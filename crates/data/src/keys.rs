//! Key sequences and permutations (sorting / permutation workloads).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `n` uniform random `u64` keys.
pub fn uniform_u64(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen()).collect()
}

/// `n` already-sorted keys (adversarially easy input).
pub fn sorted_u64(n: usize) -> Vec<u64> {
    (0..n as u64).map(|i| i * 3 + 1).collect()
}

/// `n` reverse-sorted keys.
pub fn reverse_sorted_u64(n: usize) -> Vec<u64> {
    (0..n as u64).rev().map(|i| i * 3 + 1).collect()
}

/// Sorted keys with `swaps` random transpositions applied.
pub fn almost_sorted_u64(n: usize, swaps: usize, seed: u64) -> Vec<u64> {
    let mut keys = sorted_u64(n);
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..swaps {
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        keys.swap(i, j);
    }
    keys
}

/// `n` keys drawn from only `distinct` values (duplicate-heavy input,
/// the classic sample-sort stress case).
pub fn few_distinct_u64(n: usize, distinct: usize, seed: u64) -> Vec<u64> {
    assert!(distinct >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..distinct as u64) * 7 + 3).collect()
}

/// A heavy-tailed ("zipf-like") key distribution: value `k` has weight
/// `∝ 1/(k+1)`. Implemented by inverse-CDF over a harmonic prefix table.
pub fn zipf_like_u64(n: usize, universe: usize, seed: u64) -> Vec<u64> {
    assert!(universe >= 1);
    let mut cdf = Vec::with_capacity(universe);
    let mut acc = 0.0f64;
    for k in 0..universe {
        acc += 1.0 / (k as f64 + 1.0);
        cdf.push(acc);
    }
    let total = acc;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let x = rng.gen::<f64>() * total;
            cdf.partition_point(|&c| c < x) as u64
        })
        .collect()
}

/// A uniformly random permutation of `0..n` (Fisher–Yates).
pub fn random_permutation(n: usize, seed: u64) -> Vec<u64> {
    let mut perm: Vec<u64> = (0..n as u64).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(uniform_u64(100, 7), uniform_u64(100, 7));
        assert_ne!(uniform_u64(100, 7), uniform_u64(100, 8));
        assert_eq!(random_permutation(50, 3), random_permutation(50, 3));
    }

    #[test]
    fn permutation_is_a_permutation() {
        let p = random_permutation(1000, 42);
        let mut seen = vec![false; 1000];
        for &x in &p {
            assert!(!seen[x as usize]);
            seen[x as usize] = true;
        }
    }

    #[test]
    fn sorted_and_reverse_are_inverses() {
        let a = sorted_u64(10);
        let mut b = reverse_sorted_u64(10);
        b.reverse();
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn few_distinct_respects_universe() {
        let keys = few_distinct_u64(500, 5, 1);
        let mut uniq: Vec<u64> = keys.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert!(uniq.len() <= 5);
    }

    #[test]
    fn zipf_is_skewed() {
        let keys = zipf_like_u64(10_000, 100, 9);
        let zeros = keys.iter().filter(|&&k| k == 0).count();
        let nineties = keys.iter().filter(|&&k| k >= 90).count();
        assert!(zeros * 2 > nineties, "zeros={zeros} tail={nineties}");
        assert!(keys.iter().all(|&k| k < 100));
    }

    #[test]
    fn almost_sorted_mostly_sorted() {
        let keys = almost_sorted_u64(1000, 5, 4);
        let inversions = keys.windows(2).filter(|w| w[0] > w[1]).count();
        assert!(inversions <= 20);
    }
}
