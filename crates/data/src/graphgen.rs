//! Lists, trees, graphs and expression trees (Group C workloads).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::keys::random_permutation;

/// A random singly linked list over nodes `0..n`, returned as a
/// successor array: `succ[i]` is the next node, and the unique tail
/// points to itself. The head is returned alongside.
pub fn random_list(n: usize, seed: u64) -> (Vec<u64>, u64) {
    assert!(n >= 1);
    let order = random_permutation(n, seed);
    let mut succ = vec![0u64; n];
    for w in order.windows(2) {
        succ[w[0] as usize] = w[1];
    }
    let tail = *order.last().unwrap();
    succ[tail as usize] = tail;
    (succ, order[0])
}

/// A random rooted tree over nodes `0..n` as a parent array (`parent[0]
/// = 0` is the root). Node `i`'s parent is uniform over earlier nodes of
/// a random relabelling, giving non-degenerate shapes.
pub fn random_tree_parents(n: usize, seed: u64) -> Vec<u64> {
    assert!(n >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let label = random_permutation(n, seed ^ 0x9e3779b97f4a7c15);
    // Build in label order: label[0] is the root.
    let mut parent = vec![0u64; n];
    parent[label[0] as usize] = label[0];
    for i in 1..n {
        let j = rng.gen_range(0..i);
        parent[label[i] as usize] = label[j];
    }
    // Relabel so node 0 is the root (swap roles of 0 and label[0]).
    let root = label[0];
    if root != 0 {
        let map = |x: u64| {
            if x == root {
                0
            } else if x == 0 {
                root
            } else {
                x
            }
        };
        let mut out = vec![0u64; n];
        for x in 0..n {
            out[map(x as u64) as usize] = map(parent[x]);
        }
        return out;
    }
    parent
}

/// A random forest: like [`random_tree_parents`] but each non-first node
/// becomes a new root with probability `1/avg_tree_size`.
pub fn random_forest_parents(n: usize, avg_tree_size: usize, seed: u64) -> Vec<u64> {
    assert!(n >= 1 && avg_tree_size >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut parent = vec![0u64; n];
    parent[0] = 0;
    for (i, p) in parent.iter_mut().enumerate().skip(1) {
        if rng.gen_range(0..avg_tree_size) == 0 {
            *p = i as u64; // new root
        } else {
            *p = rng.gen_range(0..i) as u64;
        }
    }
    parent
}

/// `m` distinct undirected edges over `n` vertices, no self-loops
/// (the G(n, m) model). Requires `m ≤ n(n−1)/2`.
pub fn gnm_edges(n: usize, m: usize, seed: u64) -> Vec<(u64, u64)> {
    assert!(n >= 2);
    let max = n as u128 * (n as u128 - 1) / 2;
    assert!(m as u128 <= max, "too many edges requested");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    let mut out = Vec::with_capacity(m);
    while out.len() < m {
        let a = rng.gen_range(0..n as u64);
        let b = rng.gen_range(0..n as u64);
        if a == b {
            continue;
        }
        let e = (a.min(b), a.max(b));
        if seen.insert(e) {
            out.push(e);
        }
    }
    out
}

/// Operators of a random arithmetic expression tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Addition.
    Add,
    /// Multiplication (values kept small to avoid overflow in tests).
    Mul,
    /// Maximum.
    Max,
}

/// One node of an expression tree in array form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExprNode {
    /// Leaf with a constant value.
    Leaf(i64),
    /// Internal node applying `Op` to children `(left, right)`.
    Node(Op, usize, usize),
}

/// A random full binary expression tree with `leaves` leaves, returned
/// as a node array whose last element is the root. Leaf values are in
/// `0..8` so `Mul` chains stay in range.
pub fn random_expression(leaves: usize, seed: u64) -> Vec<ExprNode> {
    assert!(leaves >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nodes: Vec<ExprNode> = Vec::with_capacity(2 * leaves - 1);
    let mut roots: Vec<usize> = (0..leaves)
        .map(|_| {
            nodes.push(ExprNode::Leaf(rng.gen_range(0..8)));
            nodes.len() - 1
        })
        .collect();
    while roots.len() > 1 {
        let i = rng.gen_range(0..roots.len());
        let a = roots.swap_remove(i);
        let j = rng.gen_range(0..roots.len());
        let b = roots.swap_remove(j);
        let op = match rng.gen_range(0..3) {
            0 => Op::Add,
            1 => Op::Mul,
            _ => Op::Max,
        };
        nodes.push(ExprNode::Node(op, a, b));
        roots.push(nodes.len() - 1);
    }
    nodes
}

/// Evaluate an expression-tree node array (reference semantics for the
/// CGM expression evaluation algorithm). Values saturate.
pub fn eval_expression(nodes: &[ExprNode]) -> i64 {
    fn eval(nodes: &[ExprNode], i: usize) -> i64 {
        match nodes[i] {
            ExprNode::Leaf(v) => v,
            ExprNode::Node(op, a, b) => {
                let x = eval(nodes, a);
                let y = eval(nodes, b);
                match op {
                    Op::Add => x.saturating_add(y),
                    Op::Mul => x.saturating_mul(y),
                    Op::Max => x.max(y),
                }
            }
        }
    }
    eval(nodes, nodes.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_is_single_chain() {
        let n = 500;
        let (succ, head) = random_list(n, 3);
        let mut seen = vec![false; n];
        let mut cur = head;
        for _ in 0..n - 1 {
            assert!(!seen[cur as usize]);
            seen[cur as usize] = true;
            cur = succ[cur as usize];
        }
        // last node is the tail: self-loop
        assert!(!seen[cur as usize]);
        assert_eq!(succ[cur as usize], cur);
    }

    #[test]
    fn tree_parent_array_is_rooted_at_zero() {
        let n = 300;
        let parent = random_tree_parents(n, 7);
        assert_eq!(parent[0], 0);
        // every node reaches the root
        for mut x in 0..n as u64 {
            for _ in 0..n {
                if x == 0 {
                    break;
                }
                x = parent[x as usize];
            }
            assert_eq!(x, 0);
        }
    }

    #[test]
    fn forest_has_multiple_roots() {
        let parent = random_forest_parents(1000, 50, 1);
        let roots = parent.iter().enumerate().filter(|&(i, &p)| p == i as u64).count();
        assert!(roots > 3, "roots = {roots}");
        // acyclic: every node reaches some root
        for mut x in 0..1000u64 {
            for _ in 0..1001 {
                let p = parent[x as usize];
                if p == x {
                    break;
                }
                x = p;
            }
            assert_eq!(parent[x as usize], x);
        }
    }

    #[test]
    fn gnm_edges_distinct_no_loops() {
        let edges = gnm_edges(100, 500, 9);
        assert_eq!(edges.len(), 500);
        let mut s = edges.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 500);
        for (a, b) in edges {
            assert!(a < b && b < 100);
        }
    }

    #[test]
    fn expression_evaluates() {
        let nodes = random_expression(64, 5);
        assert_eq!(nodes.len(), 127);
        let v1 = eval_expression(&nodes);
        let v2 = eval_expression(&random_expression(64, 5));
        assert_eq!(v1, v2, "deterministic");
    }

    #[test]
    fn tiny_sizes_work() {
        let (succ, head) = random_list(1, 0);
        assert_eq!(succ, vec![0]);
        assert_eq!(head, 0);
        assert_eq!(random_tree_parents(1, 0), vec![0]);
        let e = random_expression(1, 0);
        assert_eq!(e.len(), 1);
    }
}
