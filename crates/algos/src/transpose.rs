//! *CGMTranspose* — matrix transpose as a single h-relation (`λ = 1`),
//! analogous to [`crate::permute::CgmPermute`] but with the destination
//! computed from the matrix shape rather than carried as data
//! (paper Section 3.1, Group A row 3).
//!
//! A `k × ℓ` matrix stored row-major is block-distributed over the `v`
//! processors; element at global position `g = r·ℓ + c` moves to
//! position `c·k + r` of the transposed (ℓ × k, row-major) matrix.

use cgmio_model::{CgmProgram, RoundCtx, Status};

use cgmio_data::block_split_ranges;

/// State: `(local_elements, rows_k, cols_l)`; after the run the local
/// block of the transposed matrix.
pub type TransposeState = (Vec<u64>, u64, u64);

/// The CGM matrix-transpose program.
#[derive(Debug, Clone, Copy, Default)]
pub struct CgmTranspose;

fn owner(n: usize, v: usize, g: usize) -> usize {
    let base = n / v;
    let extra = n % v;
    let boundary = extra * (base + 1);
    if g < boundary {
        g / (base + 1)
    } else {
        extra + (g - boundary) / base.max(1)
    }
}

impl CgmProgram for CgmTranspose {
    type Msg = (u64, u64);
    type State = TransposeState;

    fn round(&self, ctx: &mut RoundCtx<'_, (u64, u64)>, state: &mut TransposeState) -> Status {
        let v = ctx.v;
        let (k, l) = (state.1, state.2);
        let n = (k * l) as usize;
        match ctx.round {
            0 => {
                let my_range = block_split_ranges(n, v, ctx.pid);
                for (off, &val) in state.0.iter().enumerate() {
                    let g = (my_range.start + off) as u64;
                    let (r, c) = (g / l, g % l);
                    let g2 = c * k + r;
                    ctx.push(owner(n, v, g2 as usize), (g2, val));
                }
                state.0.clear();
                Status::Continue
            }
            _ => {
                let my_range = block_split_ranges(n, v, ctx.pid);
                let mut out = vec![0u64; my_range.len()];
                for (_src, items) in ctx.incoming.iter() {
                    for &(g2, val) in items {
                        out[g2 as usize - my_range.start] = val;
                    }
                }
                state.0 = out;
                Status::Done
            }
        }
    }

    fn rounds_hint(&self, _v: usize) -> Option<usize> {
        Some(2)
    }
}

/// Sequential reference transpose (row-major `k × ℓ` → row-major
/// `ℓ × k`).
pub fn transpose_reference(m: &[u64], k: usize, l: usize) -> Vec<u64> {
    assert_eq!(m.len(), k * l);
    let mut out = vec![0u64; k * l];
    for r in 0..k {
        for c in 0..l {
            out[c * k + r] = m[r * l + c];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgmio_data::{block_split, uniform_u64};
    use cgmio_model::{DirectRunner, ThreadedRunner};

    fn init(m: &[u64], k: u64, l: u64, v: usize) -> Vec<TransposeState> {
        block_split(m.to_vec(), v).into_iter().map(|b| (b, k, l)).collect()
    }

    fn check(fin: &[TransposeState], m: &[u64], k: usize, l: usize) {
        let flat: Vec<u64> = fin.iter().flat_map(|(b, _, _)| b.iter().copied()).collect();
        assert_eq!(flat, transpose_reference(m, k, l));
    }

    #[test]
    fn transposes_rectangular() {
        let (k, l) = (37, 53);
        let m = uniform_u64(k * l, 1);
        let v = 6;
        let (fin, costs) =
            DirectRunner::default().run(&CgmTranspose, init(&m, k as u64, l as u64, v)).unwrap();
        check(&fin, &m, k, l);
        assert_eq!(costs.lambda(), 1);
    }

    #[test]
    fn transpose_twice_is_identity() {
        let (k, l) = (16, 24);
        let m = uniform_u64(k * l, 9);
        let v = 4;
        let (fin, _) =
            DirectRunner::default().run(&CgmTranspose, init(&m, k as u64, l as u64, v)).unwrap();
        let t: Vec<u64> = fin.iter().flat_map(|(b, _, _)| b.iter().copied()).collect();
        let (fin2, _) =
            DirectRunner::default().run(&CgmTranspose, init(&t, l as u64, k as u64, v)).unwrap();
        let tt: Vec<u64> = fin2.iter().flat_map(|(b, _, _)| b.iter().copied()).collect();
        assert_eq!(tt, m);
    }

    #[test]
    fn degenerate_shapes() {
        let v = 3;
        // row vector
        let m: Vec<u64> = (0..7).collect();
        let (fin, _) = DirectRunner::default().run(&CgmTranspose, init(&m, 1, 7, v)).unwrap();
        check(&fin, &m, 1, 7);
        // column vector
        let (fin, _) = DirectRunner::default().run(&CgmTranspose, init(&m, 7, 1, v)).unwrap();
        check(&fin, &m, 7, 1);
        // 1x1
        let (fin, _) = DirectRunner::default().run(&CgmTranspose, init(&[5], 1, 1, 1)).unwrap();
        check(&fin, &[5], 1, 1);
    }

    #[test]
    fn works_on_threads() {
        let (k, l) = (40, 25);
        let m = uniform_u64(k * l, 4);
        let v = 8;
        let (fin, _) =
            ThreadedRunner::new(4).run(&CgmTranspose, init(&m, k as u64, l as u64, v)).unwrap();
        check(&fin, &m, k, l);
    }
}
