//! # cgmio-algos — the CGM algorithm catalogue
//!
//! Implementations of the CGM algorithms whose EM-CGM simulations make up
//! the paper's Figure 5, each as a [`cgmio_model::CgmProgram`] that runs
//! unmodified on the in-memory runners *and* on the external-memory
//! simulation engines of `cgmio-core`:
//!
//! * **Group A** (O(1) rounds, `O(N/(pDB))` I/Os): [`sort::CgmSort`]
//!   (deterministic sorting by regular sampling), [`permute::CgmPermute`]
//!   (the paper's Algorithm 4), [`transpose::CgmTranspose`].
//! * **Group B** (geometry / GIS): convex hull, 3D maxima, union of
//!   rectangles, nearest neighbours, lower envelope, dominance counting,
//!   separability, segment tree / batched point location, trapezoidal
//!   decomposition, triangulation, Delaunay (probabilistic).
//! * **Group C** (O(log v) rounds): list ranking, Euler tour, tree
//!   depth/LCA, tree contraction & expression evaluation, connected
//!   components, spanning forest, biconnected components, open ear
//!   decomposition.

#![warn(missing_docs)]

pub mod geometry;
pub mod graphs;
pub mod permute;
pub mod sort;
pub mod transpose;

pub use permute::{CgmPermute, PermuteState};
pub use sort::{CgmSort, SortKey, SortMsg, SortState};
pub use transpose::{CgmTranspose, TransposeState};
