//! List, tree and graph CGM algorithms (the paper's Figure 5 Group C).
//!
//! All programs use `λ = O(log v)`–`O(log N)` communication rounds with
//! `O(N/v)`-item h-relations, so their EM-CGM simulations run in
//! `O((N/(pDB))·log)` parallel I/Os — the Group C rows of Figure 5.

pub mod connectivity;
pub mod contraction;
pub mod euler;
pub mod lca;
pub mod listrank;
pub mod rmq;
pub mod tv;

pub use connectivity::{CgmConnectivity, ConnState};
pub use contraction::{CgmExprEval, ExprEvalState, MOD};
pub use euler::{CgmEulerTour, EulerState};
pub use lca::{CgmBatchedLca, LcaState};
pub use listrank::{CgmListRank, ListRankState};
pub use rmq::{CgmRangeMinMax, RmqState};
pub use tv::{
    cgm_biconnected_components, cgm_open_ear_decomposition, CgmRootTree, CompositionReport, Exec,
};

/// Owner of global index `g` under the block distribution of `n` items
/// over `v` processors.
pub(crate) fn owner(n: usize, v: usize, g: usize) -> usize {
    let base = n / v;
    let extra = n % v;
    let boundary = extra * (base + 1);
    if g < boundary {
        g / (base + 1)
    } else {
        extra + (g - boundary) / base.max(1)
    }
}

/// Number of pointer-jumping iterations that guarantee convergence for
/// `n` elements.
pub(crate) fn jump_iters(n: usize) -> usize {
    if n <= 1 {
        0
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jump_iter_counts() {
        assert_eq!(jump_iters(0), 0);
        assert_eq!(jump_iters(1), 0);
        assert_eq!(jump_iters(2), 1);
        assert_eq!(jump_iters(3), 2);
        assert_eq!(jump_iters(8), 3);
        assert_eq!(jump_iters(9), 4);
    }

    #[test]
    fn owner_covers_range() {
        for (n, v) in [(10usize, 3usize), (7, 7), (100, 8)] {
            for g in 0..n {
                let o = owner(n, v, g);
                let r = cgmio_data::block_split_ranges(n, v, o);
                assert!(r.contains(&g), "n={n} v={v} g={g}");
            }
        }
    }
}
