//! CGM batched lowest common ancestors by distributed binary lifting
//! (Figure 5 Group C row 1's "Lowest common ancestor").
//!
//! Phase 1 (`2K` rounds, `K = ⌈log₂ n⌉`): build the ancestor table
//! `anc_k[x]` (ancestor at distance `2^k`, clamped at the root) and
//! depths by pointer jumping. Phase 2: all queries synchronously walk
//! the standard lifting schedule — fetch depths, equalise them bit by
//! bit, descend jointly from the highest level, and finish with one
//! parent hop — each step one request/reply round pair.

use cgmio_model::{CgmProgram, RoundCtx, Status};

use super::{jump_iters, owner};
use cgmio_data::block_split_ranges;

/// Messages `[tag, a, b, c]`.
type Msg = [u64; 4];

const REQ: u64 = 0; // [_, target_vertex, corr, level]: send (anc_level, depth)
const RPL: u64 = 1; // [_, corr, anc_value, depth_value]

/// State:
/// `((n, parent_block, anc_flat), (depth_block, queries), (qa, qb, (da, db)))`.
///
/// `anc_flat` holds `K+1` levels × local vertices. `queries` are
/// `(a, b)` pairs owned by this processor; when the run completes, `qa`
/// holds the answers.
pub type LcaState = (
    (u64, Vec<u64>, Vec<u64>),
    (Vec<u64>, Vec<(u64, u64)>),
    (Vec<u64>, Vec<u64>, (Vec<u64>, Vec<u64>)),
);

/// The batched-LCA program.
#[derive(Debug, Clone, Copy, Default)]
pub struct CgmBatchedLca;

struct Schedule {
    k: usize,
    build_end: usize, // rounds [0, build_end): table construction
    depth_end: usize, // + 2: depth fetch + swap
    lift_end: usize,  // + 2K: equalise depths
    joint_end: usize, // + 2K: joint descent
    total: usize,     // + 2: final parent hop
}

fn schedule(n: usize) -> Schedule {
    let k = jump_iters(n);
    let build_end = 2 * k;
    let depth_end = build_end + 2;
    let lift_end = depth_end + 2 * k;
    let joint_end = lift_end + 2 * k;
    Schedule { k, build_end, depth_end, lift_end, joint_end, total: joint_end + 2 }
}

impl CgmProgram for CgmBatchedLca {
    type Msg = Msg;
    type State = LcaState;

    fn round(&self, ctx: &mut RoundCtx<'_, Msg>, state: &mut LcaState) -> Status {
        let v = ctx.v;
        let n = state.0 .0 as usize;
        if n <= 1 {
            // trivial tree: every query answers the root
            state.2 .0 = state.1 .1.iter().map(|_| 0).collect();
            state.2 .1 = state.2 .0.clone();
            return Status::Done;
        }
        let my_range = block_split_ranges(n, v, ctx.pid);
        let nl = my_range.len();
        let sched = schedule(n);
        let kk = sched.k;
        let r = ctx.round;

        // Odd rounds: answer (anc_level, depth) lookups uniformly.
        if r % 2 == 1 {
            let mut replies: Vec<(usize, Msg)> = Vec::new();
            for (src, items) in ctx.incoming.iter() {
                for &[_, target, corr, level] in items {
                    let li = target as usize - my_range.start;
                    let anc = state.0 .2[level as usize * nl + li];
                    let depth = state.1 .0[li];
                    replies.push((src, [RPL, corr, anc, depth]));
                }
            }
            for (dst, msg) in replies {
                ctx.push(dst, msg);
            }
            return Status::Continue;
        }

        // Gather this round's incoming replies (one per correlation id).
        let apply: Vec<(u64, u64, u64)> = ctx
            .incoming
            .iter()
            .flat_map(|(_, items)| items.iter().map(|&[_, corr, anc, d]| (corr, anc, d)))
            .collect();

        // --- Phase 1: build ancestor table + depths -------------------
        if r < sched.build_end {
            let k = r / 2;
            if k == 0 {
                state.0 .2 = vec![0; (kk + 1) * nl];
                state.0 .2[..nl].copy_from_slice(&state.0 .1);
                state.1 .0 = state
                    .0
                     .1
                    .iter()
                    .enumerate()
                    .map(|(i, &p)| u64::from(p != (my_range.start + i) as u64))
                    .collect();
            } else {
                for &(corr, anc, d) in &apply {
                    let li = corr as usize;
                    state.0 .2[k * nl + li] = anc;
                    state.1 .0[li] += d;
                }
            }
            for li in 0..nl {
                let y = state.0 .2[k * nl + li];
                if y == (my_range.start + li) as u64 {
                    state.0 .2[(k + 1) * nl + li] = y; // clamped at root
                } else {
                    ctx.push(owner(n, v, y as usize), [REQ, y, li as u64, k as u64]);
                }
            }
            return Status::Continue;
        }

        let q = state.1 .1.len();
        let (qpart, dpart) = (&mut state.2, &state.1 .1);
        let (qa, qb) = (&mut qpart.0, &mut qpart.1);
        let (da, db) = (&mut qpart.2 .0, &mut qpart.2 .1);

        // --- Phase 2a: fetch depths -----------------------------------
        if r == sched.build_end {
            // Apply the final table-building replies first.
            for &(corr, anc, d) in &apply {
                let li = corr as usize;
                state.0 .2[kk * nl + li] = anc;
                state.1 .0[li] += d;
            }
            *qa = dpart.iter().map(|&(a, _)| a).collect();
            *qb = dpart.iter().map(|&(_, b)| b).collect();
            *da = vec![0; q];
            *db = vec![0; q];
            for (slot, &(a, b)) in dpart.iter().enumerate() {
                ctx.push(owner(n, v, a as usize), [REQ, a, 2 * slot as u64, 0]);
                ctx.push(owner(n, v, b as usize), [REQ, b, 2 * slot as u64 + 1, 0]);
            }
            return Status::Continue;
        }

        // --- Phase 2b: equalise depths --------------------------------
        if r > sched.build_end && r <= sched.lift_end {
            if r == sched.depth_end {
                for &(corr, _anc, d) in &apply {
                    if corr % 2 == 0 {
                        da[corr as usize / 2] = d;
                    } else {
                        db[corr as usize / 2] = d;
                    }
                }
                for slot in 0..q {
                    if da[slot] < db[slot] {
                        qa.swap(slot, slot);
                        let (x, y) = (qa[slot], qb[slot]);
                        qa[slot] = y;
                        qb[slot] = x;
                        let (x, y) = (da[slot], db[slot]);
                        da[slot] = y;
                        db[slot] = x;
                    }
                }
            } else {
                // apply last bit's lift: corr = slot
                for &(corr, anc, _) in &apply {
                    qa[corr as usize] = anc;
                }
            }
            let step = (r - sched.depth_end) / 2;
            if step < kk {
                let bit = kk - 1 - step;
                for slot in 0..q {
                    let delta = da[slot] - db[slot];
                    if delta & (1 << bit) != 0 {
                        da[slot] -= 1 << bit;
                        ctx.push(
                            owner(n, v, qa[slot] as usize),
                            [REQ, qa[slot], slot as u64, bit as u64],
                        );
                    }
                }
                return Status::Continue;
            }
            // r == lift_end falls through into the joint phase below.
        }

        // --- Phase 2c: joint descent ----------------------------------
        if r >= sched.lift_end && r <= sched.joint_end {
            if r > sched.lift_end {
                // corr = 2·slot + side
                let mut pending: std::collections::BTreeMap<usize, [u64; 2]> =
                    std::collections::BTreeMap::new();
                for &(corr, anc, _) in &apply {
                    pending.entry(corr as usize / 2).or_insert([u64::MAX; 2])[corr as usize % 2] =
                        anc;
                }
                for (slot, [na, nb]) in pending {
                    debug_assert!(na != u64::MAX && nb != u64::MAX);
                    if na != nb {
                        qa[slot] = na;
                        qb[slot] = nb;
                    }
                }
            }
            let step = (r - sched.lift_end) / 2;
            if step < kk {
                let bit = kk - 1 - step;
                for slot in 0..q {
                    if qa[slot] != qb[slot] {
                        ctx.push(
                            owner(n, v, qa[slot] as usize),
                            [REQ, qa[slot], 2 * slot as u64, bit as u64],
                        );
                        ctx.push(
                            owner(n, v, qb[slot] as usize),
                            [REQ, qb[slot], 2 * slot as u64 + 1, bit as u64],
                        );
                    }
                }
                return Status::Continue;
            }
            // r == joint_end: final parent hop for unresolved queries.
            for slot in 0..q {
                if qa[slot] != qb[slot] {
                    ctx.push(owner(n, v, qa[slot] as usize), [REQ, qa[slot], slot as u64, 0]);
                }
            }
            return Status::Continue;
        }

        // --- Phase 2d: collect answers --------------------------------
        debug_assert_eq!(r, sched.total);
        for &(corr, anc, _) in &apply {
            qa[corr as usize] = anc;
            qb[corr as usize] = anc;
        }
        Status::Done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgmio_data::{block_split, random_tree_parents};
    use cgmio_graph::LcaTable;
    use cgmio_model::{DirectRunner, ThreadedRunner};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn init(parent: &[u64], queries: &[(u64, u64)], v: usize) -> Vec<LcaState> {
        let n = parent.len() as u64;
        block_split(parent.to_vec(), v)
            .into_iter()
            .zip(block_split(queries.to_vec(), v))
            .map(|(pb, qb)| {
                (
                    (n, pb, Vec::new()),
                    (Vec::new(), qb),
                    (Vec::new(), Vec::new(), (Vec::new(), Vec::new())),
                )
            })
            .collect()
    }

    fn answers(fin: &[LcaState]) -> Vec<u64> {
        fin.iter().flat_map(|(_, _, (qa, _, _))| qa.iter().copied()).collect()
    }

    #[test]
    fn matches_reference_on_random_trees() {
        for (n, v, seed) in [(100usize, 6usize, 1u64), (250, 8, 2), (33, 3, 9)] {
            let parent = random_tree_parents(n, seed);
            let table = LcaTable::new(&parent);
            let mut rng = StdRng::seed_from_u64(seed + 7);
            let queries: Vec<(u64, u64)> = (0..150)
                .map(|_| (rng.gen_range(0..n as u64), rng.gen_range(0..n as u64)))
                .collect();
            let want: Vec<u64> = queries.iter().map(|&(a, b)| table.lca(a, b)).collect();
            let (fin, _) =
                DirectRunner::default().run(&CgmBatchedLca, init(&parent, &queries, v)).unwrap();
            assert_eq!(answers(&fin), want, "n={n} seed={seed}");
        }
    }

    #[test]
    fn identity_and_ancestor_queries() {
        let parent = vec![0, 0, 1, 2, 2]; // path 0-1-2 with children 3,4 on 2
        let queries = vec![(3, 3), (3, 4), (0, 4), (1, 3), (4, 1)];
        let (fin, _) =
            DirectRunner::default().run(&CgmBatchedLca, init(&parent, &queries, 3)).unwrap();
        assert_eq!(answers(&fin), vec![3, 2, 0, 1, 1]);
    }

    #[test]
    fn path_tree_queries() {
        let n = 64u64;
        let parent: Vec<u64> = (0..n).map(|i| i.saturating_sub(1)).collect();
        let queries = vec![(63, 0), (63, 32), (10, 20), (5, 5)];
        let (fin, _) =
            DirectRunner::default().run(&CgmBatchedLca, init(&parent, &queries, 4)).unwrap();
        assert_eq!(answers(&fin), vec![0, 32, 10, 5]);
    }

    #[test]
    fn works_on_threads() {
        let parent = random_tree_parents(120, 3);
        let table = LcaTable::new(&parent);
        let queries: Vec<(u64, u64)> =
            (0..60).map(|i| ((i * 7) % 120, (i * 13 + 5) % 120)).collect();
        let want: Vec<u64> = queries.iter().map(|&(a, b)| table.lca(a, b)).collect();
        let (fin, _) =
            ThreadedRunner::new(4).run(&CgmBatchedLca, init(&parent, &queries, 6)).unwrap();
        assert_eq!(answers(&fin), want);
    }

    #[test]
    fn no_queries_still_terminates() {
        let parent = random_tree_parents(40, 5);
        let (fin, _) = DirectRunner::default().run(&CgmBatchedLca, init(&parent, &[], 4)).unwrap();
        assert!(answers(&fin).is_empty());
    }

    #[test]
    fn single_node_tree() {
        let (fin, _) =
            DirectRunner::default().run(&CgmBatchedLca, init(&[0], &[(0, 0), (0, 0)], 1)).unwrap();
        assert_eq!(answers(&fin), vec![0, 0]);
    }
}
