//! CGM expression-tree evaluation (Figure 5 Group C row 1's "tree
//! contraction, expression tree evaluation").
//!
//! Nodes of a binary expression DAG-free tree are block-distributed;
//! values flow bottom-up: in every round each processor evaluates the
//! owned nodes whose operand values have arrived and forwards results to
//! parent owners. The root's owner broadcasts completion. The number of
//! rounds equals the tree height + 2 — `O(log N)` for the random
//! expression trees of `cgmio-data` (balanced by construction), the
//! regime in which the paper's Group C I/O bound applies. (A
//! height-independent rake-and-compress contraction is a documented
//! possible extension — see DESIGN.md.)
//!
//! Arithmetic is modulo the Mersenne prime [`MOD`] so `Mul` chains stay
//! exact; `Max` compares residues.

use cgmio_model::{CgmProgram, RoundCtx, Status};

use super::owner;
use cgmio_data::block_split_ranges;
use cgmio_data::{ExprNode, Op};

/// All arithmetic is mod this prime (2⁶¹ − 1).
pub const MOD: u64 = (1 << 61) - 1;

/// Messages `[tag, a, b, c]`.
type Msg = [u64; 4];

const VALUE: u64 = 0; // [_, parent_node, child_node, value]
const FINISHED: u64 = 1; // [_, root_value, 0, 0]

/// Encoded node: `(kind/op, left, right, value)` where kind 0 = leaf
/// (value in `.3`), 1 = Add, 2 = Mul, 3 = Max.
pub type PackedNode = (u64, u64, u64, u64);

/// Pack a [`cgmio_data::ExprNode`].
pub fn pack_node(n: &ExprNode) -> PackedNode {
    match *n {
        ExprNode::Leaf(v) => (0, 0, 0, (v.rem_euclid(MOD as i64)) as u64),
        ExprNode::Node(op, l, r) => {
            let k = match op {
                Op::Add => 1,
                Op::Mul => 2,
                Op::Max => 3,
            };
            (k, l as u64, r as u64, u64::MAX)
        }
    }
}

fn apply_op(kind: u64, a: u64, b: u64) -> u64 {
    match kind {
        1 => (a + b) % MOD,
        2 => ((a as u128 * b as u128) % MOD as u128) as u64,
        3 => a.max(b),
        _ => unreachable!("leaf has no operands"),
    }
}

/// Reference evaluation with the same mod-`MOD` semantics.
pub fn eval_expression_mod(nodes: &[ExprNode]) -> u64 {
    fn eval(nodes: &[ExprNode], i: usize) -> u64 {
        match nodes[i] {
            ExprNode::Leaf(v) => v.rem_euclid(MOD as i64) as u64,
            ExprNode::Node(op, a, b) => {
                let x = eval(nodes, a);
                let y = eval(nodes, b);
                match op {
                    Op::Add => (x + y) % MOD,
                    Op::Mul => ((x as u128 * y as u128) % MOD as u128) as u64,
                    Op::Max => x.max(y),
                }
            }
        }
    }
    eval(nodes, nodes.len() - 1)
}

/// State: `((n, packed_nodes… as 4 parallel vecs), (parent_of, pending), result)`:
/// concretely `((n, kinds, lefts), (rights, values), (parents, result_holder, scratch))`.
pub type ExprEvalState =
    ((u64, Vec<u64>, Vec<u64>), (Vec<u64>, Vec<u64>), (Vec<u64>, Vec<u64>, Vec<u64>));

/// Build initial per-processor states from a node array (root = last
/// node).
pub fn expr_states(nodes: &[ExprNode], v: usize) -> Vec<ExprEvalState> {
    let n = nodes.len();
    // parent pointers
    let mut parent = vec![u64::MAX; n];
    for (i, node) in nodes.iter().enumerate() {
        if let ExprNode::Node(_, l, r) = node {
            parent[*l] = i as u64;
            parent[*r] = i as u64;
        }
    }
    let packed: Vec<PackedNode> = nodes.iter().map(pack_node).collect();
    let blocks = cgmio_data::block_split(packed, v);
    let pblocks = cgmio_data::block_split(parent, v);
    blocks
        .into_iter()
        .zip(pblocks)
        .map(|(b, pb)| {
            let kinds: Vec<u64> = b.iter().map(|x| x.0).collect();
            let lefts: Vec<u64> = b.iter().map(|x| x.1).collect();
            let rights: Vec<u64> = b.iter().map(|x| x.2).collect();
            let values: Vec<u64> = b.iter().map(|x| x.3).collect();
            ((n as u64, kinds, lefts), (rights, values), (pb, vec![u64::MAX], Vec::new()))
        })
        .collect()
}

/// The bottom-up evaluation program.
#[derive(Debug, Clone, Copy, Default)]
pub struct CgmExprEval;

impl CgmProgram for CgmExprEval {
    type Msg = Msg;
    type State = ExprEvalState;

    fn round(&self, ctx: &mut RoundCtx<'_, Msg>, state: &mut ExprEvalState) -> Status {
        let v = ctx.v;
        let n = state.0 .0 as usize;
        let my_range = block_split_ranges(n, v, ctx.pid);
        let root = (n - 1) as u64;

        // operand slots: reuse `lefts`/`rights` — once a child's value
        // arrives, overwrite the child index with MOD + value + 1 tag?
        // Cleaner: scratch holds received operand values keyed 2*li(+1),
        // initialised lazily.
        if state.2 .2.is_empty() {
            state.2 .2 = vec![u64::MAX; 2 * my_range.len().max(1)];
        }

        let mut finished = false;
        for (_src, items) in ctx.incoming.iter() {
            for &[tag, a, b, c] in items {
                match tag {
                    VALUE => {
                        let li = a as usize - my_range.start;
                        // which operand? left or right child
                        if state.0 .2[li] == b {
                            state.2 .2[2 * li] = c;
                        } else {
                            debug_assert_eq!(state.1 .0[li], b);
                            state.2 .2[2 * li + 1] = c;
                        }
                    }
                    FINISHED => {
                        state.2 .1[0] = a;
                        finished = true;
                    }
                    _ => unreachable!(),
                }
            }
        }
        if finished {
            return Status::Done;
        }

        // Evaluate ready nodes. In round 0, leaves are ready; later,
        // internal nodes whose operands arrived.
        let mut newly: Vec<(u64, u64)> = Vec::new(); // (node, value)
        for li in 0..my_range.len() {
            let g = (my_range.start + li) as u64;
            let ready_now = if ctx.round == 0 {
                state.0 .1[li] == 0 // leaf
            } else {
                state.0 .1[li] != 0
                    && state.1 .1[li] == u64::MAX
                    && state.2 .2[2 * li] != u64::MAX
                    && state.2 .2[2 * li + 1] != u64::MAX
            };
            if ready_now {
                let val = if state.0 .1[li] == 0 {
                    state.1 .1[li]
                } else {
                    let val = apply_op(state.0 .1[li], state.2 .2[2 * li], state.2 .2[2 * li + 1]);
                    state.1 .1[li] = val;
                    val
                };
                newly.push((g, val));
            }
        }
        for (g, val) in newly {
            if g == root {
                for dst in 0..v {
                    ctx.push(dst, [FINISHED, val, 0, 0]);
                }
            } else {
                let p = state.2 .0[(g as usize) - my_range.start];
                ctx.push(owner(n, v, p as usize), [VALUE, p, g, val]);
            }
        }
        Status::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgmio_data::random_expression;
    use cgmio_model::{DirectRunner, ThreadedRunner};

    fn result_of(fin: &[ExprEvalState]) -> u64 {
        // the FINISHED broadcast reaches every processor
        let r = fin[0].2 .1[0];
        for s in fin {
            assert_eq!(s.2 .1[0], r, "all processors must agree on the result");
        }
        r
    }

    fn height(nodes: &[ExprNode], i: usize) -> usize {
        match nodes[i] {
            ExprNode::Leaf(_) => 0,
            ExprNode::Node(_, a, b) => 1 + height(nodes, a).max(height(nodes, b)),
        }
    }

    #[test]
    fn evaluates_random_expressions() {
        for (leaves, v, seed) in [(64usize, 6usize, 1u64), (200, 8, 2), (33, 4, 3)] {
            let nodes = random_expression(leaves, seed);
            let want = eval_expression_mod(&nodes);
            let (fin, costs) =
                DirectRunner::default().run(&CgmExprEval, expr_states(&nodes, v)).unwrap();
            assert_eq!(result_of(&fin), want, "leaves={leaves} seed={seed}");
            // rounds track tree height (values climb one level per round)
            let h = height(&nodes, nodes.len() - 1);
            assert!(costs.lambda() <= h + 2, "λ = {} height = {h}", costs.lambda());
        }
    }

    #[test]
    fn single_leaf() {
        let nodes = random_expression(1, 0);
        let want = eval_expression_mod(&nodes);
        let (fin, _) = DirectRunner::default().run(&CgmExprEval, expr_states(&nodes, 1)).unwrap();
        assert_eq!(result_of(&fin), want);
    }

    #[test]
    fn hand_built_expression() {
        // (2 + 3) * max(4, 1) = 20
        let nodes = vec![
            ExprNode::Leaf(2),
            ExprNode::Leaf(3),
            ExprNode::Leaf(4),
            ExprNode::Leaf(1),
            ExprNode::Node(Op::Add, 0, 1),
            ExprNode::Node(Op::Max, 2, 3),
            ExprNode::Node(Op::Mul, 4, 5),
        ];
        let (fin, _) = DirectRunner::default().run(&CgmExprEval, expr_states(&nodes, 3)).unwrap();
        assert_eq!(result_of(&fin), 20);
    }

    #[test]
    fn mul_chain_stays_exact_mod_p() {
        // 3^40 mod MOD via a comb of Muls
        let mut nodes = vec![ExprNode::Leaf(3); 40];
        let mut roots: Vec<usize> = (0..40).collect();
        while roots.len() > 1 {
            let a = roots.remove(0);
            let b = roots.remove(0);
            nodes.push(ExprNode::Node(Op::Mul, a, b));
            roots.push(nodes.len() - 1);
        }
        let want = {
            let mut acc: u128 = 1;
            for _ in 0..40 {
                acc = acc * 3 % MOD as u128;
            }
            acc as u64
        };
        let (fin, _) = DirectRunner::default().run(&CgmExprEval, expr_states(&nodes, 4)).unwrap();
        assert_eq!(result_of(&fin), want);
    }

    #[test]
    fn works_on_threads() {
        let nodes = random_expression(128, 7);
        let want = eval_expression_mod(&nodes);
        let (fin, _) = ThreadedRunner::new(4).run(&CgmExprEval, expr_states(&nodes, 8)).unwrap();
        assert_eq!(result_of(&fin), want);
    }
}
