//! CGM biconnected components — Tarjan–Vishkin via composition
//! (Figure 5 Group C row 2's "Biconnected components").
//!
//! The classical reduction, each phase a CGM program from this crate:
//!
//! 1. spanning tree — [`super::CgmConnectivity`];
//! 2. root the (unrooted) tree — [`CgmRootTree`] (Euler cycle over the
//!    tree's arcs + list ranking + first-entry extraction);
//! 3. depths & preorder/subtree-size — [`super::CgmEulerTour`];
//! 4. `low(x)`/`high(x)` subtree aggregates — two
//!    [`super::rmq::CgmRangeMinMax`] runs over preorder space;
//! 5. the Tarjan–Vishkin auxiliary graph (pure local arithmetic per
//!    edge given the fetched vertex labels);
//! 6. connected components of the auxiliary graph —
//!    [`super::CgmConnectivity`] again; tree edges in one component form
//!    one biconnected component, nontree edges join their deeper
//!    endpoint's.
//!
//! The driver reshapes data between phases (block redistributions of
//! `O(N/v)` data per processor — mechanical h-relations); each phase
//! runs on the in-memory reference runner or on the sequential EM
//! engine, whose I/O the report accumulates.

use cgmio_core::{measure_requirements, EmConfig, SeqEmRunner};
use cgmio_model::{CgmProgram, DirectRunner, RoundCtx, Status};

use super::rmq::{CgmRangeMinMax, RmqState};
use super::{jump_iters, owner, CgmConnectivity, CgmEulerTour};
use cgmio_data::{block_split, block_split_ranges};

/// Messages `[tag, a, b, c, d]`.
type Msg = [u64; 5];

const ANN: u64 = 0; // [_, a, b, edge_id, 0] edge announcement (to both ends)
const SETSUCC: u64 = 1; // [_, arc, succ, 0, 0]
const TAILARC: u64 = 2; // [_, tail_arc, 0, 0, 0]
const REQ: u64 = 3; // [_, target_arc, asker_arc, 0, 0]
const RPL: u64 = 4; // [_, asker_arc, val2, succ, 0]
const ENTRY: u64 = 5; // [_, w, from, pos, 0] arc u→w with tour position

/// Root an unrooted tree given as an edge list, at vertex 0.
///
/// State: `((meta = [n, m, tail?], tree_edges, arc_succ), (arc_val2,
/// parent_out))`. Arc `2e` is `a → b` of edge `e = (a, b)`, arc `2e+1`
/// the reverse; arcs live with their edge's owner. On completion each
/// processor holds the parent of its block of vertices.
pub type RootTreeState = ((Vec<u64>, Vec<(u64, u64)>, Vec<u64>), (Vec<u64>, Vec<u64>));

/// The tree-rooting program.
#[derive(Debug, Clone, Copy, Default)]
pub struct CgmRootTree;

impl CgmProgram for CgmRootTree {
    type Msg = Msg;
    type State = RootTreeState;

    fn round(&self, ctx: &mut RoundCtx<'_, Msg>, state: &mut RootTreeState) -> Status {
        let v = ctx.v;
        let n = state.0 .0[0] as usize;
        let m = state.0 .0[1] as usize;
        let my_verts = block_split_ranges(n, v, ctx.pid);
        let my_edges = block_split_ranges(m, v, ctx.pid);
        let arc_owner = |arc: u64| owner(m, v, (arc / 2) as usize);
        let iters = jump_iters(2 * m + 2);
        let rank_base = 2; // jumping rounds start here
        let rank_end = rank_base + 2 * iters; // ENTRY sends happen here

        if m == 0 {
            // single-vertex tree
            state.1 .1 = my_verts.map(|x| x as u64).collect();
            return Status::Done;
        }

        match ctx.round {
            0 => {
                for (slot, &(a, b)) in state.0 .1.iter().enumerate() {
                    let e = (my_edges.start + slot) as u64;
                    ctx.push(owner(n, v, a as usize), [ANN, a, b, e, 0]);
                    if owner(n, v, b as usize) != owner(n, v, a as usize) {
                        ctx.push(owner(n, v, b as usize), [ANN, a, b, e, 0]);
                    }
                }
                Status::Continue
            }
            1 => {
                // Per vertex w: sorted incident arc list; compute the
                // successor of every arc entering w.
                let mut incident: Vec<Vec<(u64, u64, bool)>> = vec![Vec::new(); my_verts.len()];
                for (_src, items) in ctx.incoming.iter() {
                    for &[tag, a, b, e, _] in items {
                        debug_assert_eq!(tag, ANN);
                        if owner(n, v, a as usize) == ctx.pid && my_verts.contains(&(a as usize)) {
                            // neighbour b via edge e; arc entering a is 2e+1
                            incident[a as usize - my_verts.start].push((b, e, true));
                        }
                        if owner(n, v, b as usize) == ctx.pid && my_verts.contains(&(b as usize)) {
                            incident[b as usize - my_verts.start].push((a, e, false));
                        }
                    }
                }
                for (i, nbrs) in incident.iter_mut().enumerate() {
                    let w = (my_verts.start + i) as u64;
                    nbrs.sort_unstable();
                    let k = nbrs.len();
                    for (j, &(_, e, w_is_a)) in nbrs.iter().enumerate() {
                        // entering arc: b→a is 2e+1 when w == a, else 2e
                        let entering = if w_is_a { 2 * e + 1 } else { 2 * e };
                        let succ = if j + 1 < k || w != 0 {
                            let (_, e2, w_is_a2) = nbrs[(j + 1) % k];
                            // leaving arc toward next neighbour
                            if w_is_a2 {
                                2 * e2 // a→b with a == w
                            } else {
                                2 * e2 + 1
                            }
                        } else {
                            // root's last entering arc: tour tail
                            for dst in 0..v {
                                ctx.push(dst, [TAILARC, entering, 0, 0, 0]);
                            }
                            entering
                        };
                        ctx.push(arc_owner(entering), [SETSUCC, entering, succ, 0, 0]);
                    }
                }
                Status::Continue
            }
            r if r < rank_end => {
                let k = (r - rank_base) / 2;
                if (r - rank_base) % 2 == 1 {
                    // reply phase
                    let mut replies: Vec<(usize, Msg)> = Vec::new();
                    for (_src, items) in ctx.incoming.iter() {
                        for &[tag, target, asker, _, _] in items {
                            debug_assert_eq!(tag, REQ);
                            let li = target as usize - 2 * my_edges.start;
                            replies.push((
                                arc_owner(asker),
                                [RPL, asker, state.1 .0[li], state.0 .2[li], 0],
                            ));
                        }
                    }
                    for (dst, msg) in replies {
                        ctx.push(dst, msg);
                    }
                    return Status::Continue;
                }
                if k == 0 {
                    // apply SETSUCC/TAILARC; init val2 (tail-exclusive)
                    state.0 .2 = vec![u64::MAX; 2 * my_edges.len()];
                    state.1 .0 = vec![1u64; 2 * my_edges.len()];
                    for (_src, items) in ctx.incoming.iter() {
                        for &[tag, arc, succ, _, _] in items {
                            match tag {
                                SETSUCC => {
                                    let li = arc as usize - 2 * my_edges.start;
                                    state.0 .2[li] = succ;
                                    if succ == arc {
                                        state.1 .0[li] = 0;
                                    }
                                }
                                TAILARC => {
                                    if state.0 .0.len() < 3 {
                                        state.0 .0.push(arc);
                                    } else {
                                        state.0 .0[2] = arc;
                                    }
                                }
                                _ => unreachable!(),
                            }
                        }
                    }
                } else {
                    for (_src, items) in ctx.incoming.iter() {
                        for &[tag, asker, val2, succ, _] in items {
                            debug_assert_eq!(tag, RPL);
                            let li = asker as usize - 2 * my_edges.start;
                            state.1 .0[li] = state.1 .0[li].wrapping_add(val2);
                            state.0 .2[li] = succ;
                        }
                    }
                }
                let tail = state.0 .0.get(2).copied().unwrap_or(u64::MAX);
                for (li, &s) in state.0 .2.iter().enumerate() {
                    let a = (2 * my_edges.start + li) as u64;
                    if s != a && s != tail && s != u64::MAX {
                        ctx.push(arc_owner(s), [REQ, s, a, 0, 0]);
                    }
                }
                Status::Continue
            }
            r if r == rank_end => {
                // apply final replies, then report every arc's entry:
                // arc 2e enters b, arc 2e+1 enters a, at tour position
                // 2m − 1 − val2.
                for (_src, items) in ctx.incoming.iter() {
                    for &[tag, asker, val2, succ, _] in items {
                        debug_assert_eq!(tag, RPL);
                        let li = asker as usize - 2 * my_edges.start;
                        state.1 .0[li] = state.1 .0[li].wrapping_add(val2);
                        state.0 .2[li] = succ;
                    }
                }
                for (slot, &(a, b)) in state.0 .1.iter().enumerate() {
                    let total = 2 * m as u64;
                    for (arc_local, (from, to)) in [(2 * slot, (a, b)), (2 * slot + 1, (b, a))] {
                        let pos = (total - 1).wrapping_sub(state.1 .0[arc_local]);
                        ctx.push(owner(n, v, to as usize), [ENTRY, to, from, pos, 0]);
                    }
                }
                Status::Continue
            }
            _ => {
                // parent(w) = source of w's earliest entering arc
                let mut best: Vec<(u64, u64)> = vec![(u64::MAX, u64::MAX); my_verts.len()];
                for (_src, items) in ctx.incoming.iter() {
                    for &[tag, w, from, pos, _] in items {
                        debug_assert_eq!(tag, ENTRY);
                        let li = w as usize - my_verts.start;
                        if pos < best[li].0 {
                            best[li] = (pos, from);
                        }
                    }
                }
                state.1 .1 = best
                    .iter()
                    .enumerate()
                    .map(|(li, &(_, from))| {
                        let w = (my_verts.start + li) as u64;
                        if w == 0 {
                            0
                        } else {
                            from
                        }
                    })
                    .collect();
                Status::Done
            }
        }
    }
}

/// Which engine runs each phase of a composition.
#[derive(Debug, Clone, Copy)]
pub enum Exec {
    /// In-memory reference runner.
    Direct,
    /// Sequential external-memory engine (Algorithm 2).
    SeqEm {
        /// Disks per processor.
        d: usize,
        /// Block size in bytes.
        block_bytes: usize,
    },
}

/// Accumulated cost of a composition.
#[derive(Debug, Clone, Default)]
pub struct CompositionReport {
    /// Total communication rounds over all phases.
    pub rounds: usize,
    /// Total EM parallel I/O operations (0 under [`Exec::Direct`]).
    pub io_ops: u64,
}

fn run_phase<P: CgmProgram>(
    exec: Exec,
    prog: &P,
    mk: impl Fn() -> Vec<P::State>,
    report: &mut CompositionReport,
) -> Vec<P::State> {
    match exec {
        Exec::Direct => {
            let (fin, costs) = DirectRunner::default().run(prog, mk()).expect("phase");
            report.rounds += costs.lambda();
            fin
        }
        Exec::SeqEm { d, block_bytes } => {
            let v = mk().len();
            let (_, _, req) = measure_requirements(prog, mk()).expect("measure");
            let cfg = EmConfig::from_requirements(v, 1, d, block_bytes, &req);
            let (fin, rep) = SeqEmRunner::new(cfg).run(prog, mk()).expect("phase");
            report.rounds += rep.costs.lambda();
            report.io_ops += rep.breakdown.algorithm_ops();
            fin
        }
    }
}

/// Biconnected components of a **connected** graph: returns one
/// component id per input edge, plus the composition cost report.
pub fn cgm_biconnected_components(
    n: usize,
    edges: &[(u64, u64)],
    v: usize,
    exec: Exec,
) -> (Vec<u32>, CompositionReport) {
    assert!(n >= 1);
    let m = edges.len();
    let mut report = CompositionReport::default();

    // Phase 1: spanning tree.
    let fin = run_phase(
        exec,
        &CgmConnectivity,
        || {
            let vb = block_split((0..n as u64).collect::<Vec<_>>(), v);
            let eb = block_split(edges.to_vec(), v);
            vb.into_iter()
                .zip(eb)
                .map(|(vv, ee)| ((n as u64, vv, Vec::new()), (m as u64, ee, Vec::new())))
                .collect()
        },
        &mut report,
    );
    let labels: Vec<u64> = fin.iter().flat_map(|((_, l, _), _)| l.iter().copied()).collect();
    assert!(labels.iter().all(|&l| l == 0), "biconnectivity needs a connected graph");
    let mut tree_ids: Vec<u64> = fin.iter().flat_map(|((_, _, f), _)| f.iter().copied()).collect();
    tree_ids.sort_unstable();
    let tree_edges: Vec<(u64, u64)> = tree_ids.iter().map(|&e| edges[e as usize]).collect();
    let is_tree: Vec<bool> = {
        let mut t = vec![false; m];
        for &e in &tree_ids {
            t[e as usize] = true;
        }
        t
    };

    // Phase 2: root the spanning tree at vertex 0.
    let fin = run_phase(
        exec,
        &CgmRootTree,
        || {
            block_split(tree_edges.clone(), v)
                .into_iter()
                .map(|eb| {
                    (
                        (vec![n as u64, tree_edges.len() as u64], eb, Vec::new()),
                        (Vec::new(), Vec::new()),
                    )
                })
                .collect()
        },
        &mut report,
    );
    let parent: Vec<u64> = fin.iter().flat_map(|(_, (_, p))| p.iter().copied()).collect();

    // Phase 3: Euler tour — depths and arc positions.
    let fin = run_phase(
        exec,
        &CgmEulerTour,
        || {
            block_split(parent.clone(), v)
                .into_iter()
                .map(|b| ((vec![n as u64], b, Vec::new()), (Vec::new(), Vec::new(), Vec::new())))
                .collect()
        },
        &mut report,
    );
    let depth: Vec<u64> = fin.iter().flat_map(|((_, _, d), _)| d.iter().copied()).collect();
    let val2: Vec<u64> = fin.iter().flat_map(|(_, (_, _, v2))| v2.iter().copied()).collect();
    let total_arcs = 2 * (n as u64 - 1);
    let pos = |arc: usize| (total_arcs - 1).wrapping_sub(val2[arc]);
    // preorder (root = 0, others 1-based by down-arc order) & subtree size
    let mut pre = vec![0u64; n];
    let mut size = vec![1u64; n];
    for x in 1..n {
        let p_down = pos(2 * x + 1);
        let p_up = pos(2 * x);
        pre[x] = (p_down + 1 + depth[x]) / 2;
        size[x] = (p_up - p_down).div_ceil(2);
    }
    size[0] = n as u64;

    // Phase 4: low/high subtree aggregates over preorder space.
    let mlo: Vec<(u64, u64)> = (0..n)
        .map(|u| {
            let mut lo = pre[u];
            for (e, &(a, b)) in edges.iter().enumerate() {
                if !is_tree[e] {
                    if a as usize == u {
                        lo = lo.min(pre[b as usize]);
                    }
                    if b as usize == u {
                        lo = lo.min(pre[a as usize]);
                    }
                }
            }
            (pre[u], lo)
        })
        .collect();
    let mhi: Vec<(u64, u64)> = (0..n)
        .map(|u| {
            let mut hi = pre[u];
            for (e, &(a, b)) in edges.iter().enumerate() {
                if !is_tree[e] {
                    if a as usize == u {
                        hi = hi.max(pre[b as usize]);
                    }
                    if b as usize == u {
                        hi = hi.max(pre[a as usize]);
                    }
                }
            }
            (pre[u], hi)
        })
        .collect();
    let queries: Vec<[u64; 3]> = (0..n).map(|x| [x as u64, pre[x], pre[x] + size[x]]).collect();
    let rmq = |vals: &[(u64, u64)], report: &mut CompositionReport| -> Vec<[u64; 3]> {
        let fin = run_phase(
            exec,
            &CgmRangeMinMax,
            || {
                block_split(vals.to_vec(), v)
                    .into_iter()
                    .zip(block_split(queries.clone(), v))
                    .map(|(vb, qb)| -> RmqState {
                        ((n as u64, vb, qb), (Vec::new(), Vec::new()), Vec::new())
                    })
                    .collect()
            },
            report,
        );
        let mut out: Vec<[u64; 3]> = fin.into_iter().flat_map(|(_, _, a)| a).collect();
        out.sort_unstable();
        out
    };
    let lo_ans = rmq(&mlo, &mut report);
    let hi_ans = rmq(&mhi, &mut report);
    let low: Vec<u64> = (0..n).map(|x| lo_ans[x][1]).collect();
    let high: Vec<u64> = (0..n).map(|x| hi_ans[x][2]).collect();

    // Phase 5: Tarjan–Vishkin auxiliary graph on tree-edge ids (= child
    // vertex ids 1..n).
    let is_anc = |u: usize, w: usize| pre[u] <= pre[w] && pre[w] < pre[u] + size[u];
    let mut aux: Vec<(u64, u64)> = Vec::new();
    for (e, &(a, b)) in edges.iter().enumerate() {
        if is_tree[e] {
            continue;
        }
        let (a, b) = (a as usize, b as usize);
        if !is_anc(a, b) && !is_anc(b, a) {
            aux.push((a as u64, b as u64));
        }
    }
    for x in 1..n {
        let p = parent[x] as usize;
        if p != 0 && (low[x] < pre[p] || high[x] >= pre[p] + size[p]) {
            aux.push((x as u64, p as u64));
        }
    }

    // Phase 6: connected components of the auxiliary graph.
    let fin = run_phase(
        exec,
        &CgmConnectivity,
        || {
            let vb = block_split((0..n as u64).collect::<Vec<_>>(), v);
            let eb = block_split(aux.clone(), v);
            vb.into_iter()
                .zip(eb)
                .map(|(vv, ee)| ((n as u64, vv, Vec::new()), (aux.len() as u64, ee, Vec::new())))
                .collect()
        },
        &mut report,
    );
    let aux_label: Vec<u64> = fin.iter().flat_map(|((_, l, _), _)| l.iter().copied()).collect();

    // Map every input edge to its component: tree edge -> deeper
    // endpoint's aux label; nontree -> deeper endpoint's tree edge.
    let comp_of = |e: usize| -> u64 {
        let (a, b) = (edges[e].0 as usize, edges[e].1 as usize);
        let child = if depth[a] > depth[b] { a } else { b };
        aux_label[child]
    };
    let raw: Vec<u64> = (0..m).map(comp_of).collect();
    // canonical ids 0..k in first-appearance order
    let mut seen: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
    let out: Vec<u32> = raw
        .iter()
        .map(|&r| {
            let next = seen.len() as u32;
            *seen.entry(r).or_insert(next)
        })
        .collect();
    (out, report)
}

/// Open ear decomposition of a connected, two-edge-connected graph —
/// the MSV lca-labelling, composed from the same phases:
///
/// 1–3. spanning tree, rooting, Euler tour (as for biconnectivity);
/// 4. lca of every nontree edge — [`super::CgmBatchedLca`];
/// 5. ear of a nontree edge = rank of its `(lca depth, serial)` label;
///    ear of a tree edge `(x, p(x))` = subtree-min over `sub(x)` of the
///    per-vertex minimum incident nontree label — one
///    [`super::rmq::CgmRangeMinMax`] run over preorder space (a
///    minimum-label covering edge always has its lca outside the
///    subtree, so the unconditioned subtree-min is the min cover).
///
/// Returns one ear id per input edge (`None` if the graph has a
/// bridge), matching `cgmio_graph::open_ear_decomposition` exactly.
pub fn cgm_open_ear_decomposition(
    n: usize,
    edges: &[(u64, u64)],
    v: usize,
    exec: Exec,
) -> (Option<Vec<u32>>, CompositionReport) {
    let m = edges.len();
    let mut report = CompositionReport::default();

    // Phases 1–3 (shared with biconnectivity).
    let fin = run_phase(
        exec,
        &CgmConnectivity,
        || {
            let vb = block_split((0..n as u64).collect::<Vec<_>>(), v);
            let eb = block_split(edges.to_vec(), v);
            vb.into_iter()
                .zip(eb)
                .map(|(vv, ee)| ((n as u64, vv, Vec::new()), (m as u64, ee, Vec::new())))
                .collect()
        },
        &mut report,
    );
    let labels: Vec<u64> = fin.iter().flat_map(|((_, l, _), _)| l.iter().copied()).collect();
    if labels.iter().any(|&l| l != 0) {
        return (None, report); // disconnected
    }
    let mut tree_ids: Vec<u64> = fin.iter().flat_map(|((_, _, f), _)| f.iter().copied()).collect();
    tree_ids.sort_unstable();
    let tree_edges: Vec<(u64, u64)> = tree_ids.iter().map(|&e| edges[e as usize]).collect();
    let mut is_tree = vec![false; m];
    for &e in &tree_ids {
        is_tree[e as usize] = true;
    }

    let fin = run_phase(
        exec,
        &CgmRootTree,
        || {
            block_split(tree_edges.clone(), v)
                .into_iter()
                .map(|eb| {
                    (
                        (vec![n as u64, tree_edges.len() as u64], eb, Vec::new()),
                        (Vec::new(), Vec::new()),
                    )
                })
                .collect()
        },
        &mut report,
    );
    let parent: Vec<u64> = fin.iter().flat_map(|(_, (_, p))| p.iter().copied()).collect();

    let fin = run_phase(
        exec,
        &CgmEulerTour,
        || {
            block_split(parent.clone(), v)
                .into_iter()
                .map(|b| ((vec![n as u64], b, Vec::new()), (Vec::new(), Vec::new(), Vec::new())))
                .collect()
        },
        &mut report,
    );
    let depth: Vec<u64> = fin.iter().flat_map(|((_, _, d), _)| d.iter().copied()).collect();
    let val2: Vec<u64> = fin.iter().flat_map(|(_, (_, _, v2))| v2.iter().copied()).collect();
    let total_arcs = 2 * (n as u64 - 1);
    let pos = |arc: usize| (total_arcs - 1).wrapping_sub(val2[arc]);
    let mut pre = vec![0u64; n];
    let mut size = vec![1u64; n];
    for x in 1..n {
        pre[x] = (pos(2 * x + 1) + 1 + depth[x]) / 2;
        size[x] = (pos(2 * x) - pos(2 * x + 1)).div_ceil(2);
    }
    size[0] = n as u64;

    // Phase 4: lca of every nontree edge.
    let nontree: Vec<(usize, (u64, u64))> =
        edges.iter().copied().enumerate().filter(|&(e, _)| !is_tree[e]).collect();
    let queries: Vec<(u64, u64)> = nontree.iter().map(|&(_, e)| e).collect();
    let fin = run_phase(
        exec,
        &super::CgmBatchedLca,
        || {
            block_split(parent.clone(), v)
                .into_iter()
                .zip(block_split(queries.clone(), v))
                .map(|(pb, qb)| {
                    (
                        (n as u64, pb, Vec::new()),
                        (Vec::new(), qb),
                        (Vec::new(), Vec::new(), (Vec::new(), Vec::new())),
                    )
                })
                .collect()
        },
        &mut report,
    );
    let lcas: Vec<u64> = fin.iter().flat_map(|(_, _, (qa, _, _))| qa.iter().copied()).collect();

    // MSV labels: (depth(lca), serial) — serial = position among
    // nontree edges in input order, matching the sequential reference.
    let label: Vec<u64> = nontree
        .iter()
        .zip(&lcas)
        .map(|(&(_, _), &l)| depth[l as usize])
        .enumerate()
        .map(|(serial, d)| (d << 32) | serial as u64)
        .collect();

    // Phase 5: subtree-min of the per-vertex min incident label.
    let mut c_of = vec![u64::MAX; n];
    for (k, &(_, (a, b))) in nontree.iter().enumerate() {
        c_of[a as usize] = c_of[a as usize].min(label[k]);
        c_of[b as usize] = c_of[b as usize].min(label[k]);
    }
    let vals: Vec<(u64, u64)> = (0..n).map(|u| (pre[u], c_of[u])).collect();
    let rqueries: Vec<[u64; 3]> = (0..n).map(|x| [x as u64, pre[x], pre[x] + size[x]]).collect();
    let fin = run_phase(
        exec,
        &CgmRangeMinMax,
        || {
            block_split(vals.clone(), v)
                .into_iter()
                .zip(block_split(rqueries.clone(), v))
                .map(|(vb, qb)| -> RmqState {
                    ((n as u64, vb, qb), (Vec::new(), Vec::new()), Vec::new())
                })
                .collect()
        },
        &mut report,
    );
    let mut cover = vec![u64::MAX; n];
    for row in fin.into_iter().flat_map(|(_, _, a)| a) {
        cover[row[0] as usize] = row[1];
    }

    // Assemble: ear number = rank of label among sorted labels.
    let mut sorted = label.clone();
    sorted.sort_unstable();
    let rank_of = |l: u64| sorted.binary_search(&l).expect("label exists") as u32;
    let mut out = vec![0u32; m];
    for (k, &(e, _)) in nontree.iter().enumerate() {
        out[e] = rank_of(label[k]);
    }
    // map tree edge (x, p(x)) back to its input edge index; a valid
    // cover must have its lca strictly above x (label = depth << 32 | …),
    // otherwise the tree edge is a bridge.
    for &e in &tree_ids {
        let (a, b) = edges[e as usize];
        let child = if depth[a as usize] > depth[b as usize] { a } else { b } as usize;
        if cover[child] == u64::MAX || (cover[child] >> 32) >= depth[child] {
            return (None, report); // bridge
        }
        out[e as usize] = rank_of(cover[child]);
    }
    (Some(out), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgmio_graph::biconnected_components;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Compare two edge partitions up to renaming.
    fn same_partition(a: &[u32], b: &[u32]) {
        assert_eq!(a.len(), b.len());
        let mut map_ab = std::collections::HashMap::new();
        let mut map_ba = std::collections::HashMap::new();
        for (&x, &y) in a.iter().zip(b) {
            assert_eq!(*map_ab.entry(x).or_insert(y), y, "partition mismatch");
            assert_eq!(*map_ba.entry(y).or_insert(x), x, "partition mismatch");
        }
    }

    fn check(n: usize, edges: &[(u64, u64)], v: usize) {
        let (got, rep) = cgm_biconnected_components(n, edges, v, Exec::Direct);
        let (want, _) = biconnected_components(n, edges);
        same_partition(&got, &want);
        assert!(rep.rounds > 0);
    }

    #[test]
    fn two_triangles_sharing_a_vertex() {
        let edges = vec![(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)];
        check(5, &edges, 3);
    }

    #[test]
    fn path_is_all_bridges() {
        let edges: Vec<(u64, u64)> = (0..9).map(|i| (i, i + 1)).collect();
        let (got, _) = cgm_biconnected_components(10, &edges, 4, Exec::Direct);
        // every bridge is its own component
        let mut u = got.clone();
        u.sort_unstable();
        u.dedup();
        assert_eq!(u.len(), 9);
    }

    #[test]
    fn cycle_is_one_component() {
        let edges: Vec<(u64, u64)> = (0..8).map(|i| (i, (i + 1) % 8)).collect();
        let (got, _) = cgm_biconnected_components(8, &edges, 3, Exec::Direct);
        assert!(got.iter().all(|&c| c == got[0]));
    }

    #[test]
    fn random_connected_graphs_match_reference() {
        for seed in 0..6u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 40;
            // random tree + extra edges = connected
            let mut edges: Vec<(u64, u64)> =
                (1..n as u64).map(|x| (rng.gen_range(0..x), x)).collect();
            let mut seen: std::collections::HashSet<(u64, u64)> =
                edges.iter().map(|&(a, b)| (a.min(b), a.max(b))).collect();
            for _ in 0..25 {
                let a = rng.gen_range(0..n as u64);
                let b = rng.gen_range(0..n as u64);
                if a != b && seen.insert((a.min(b), a.max(b))) {
                    edges.push((a.min(b), a.max(b)));
                }
            }
            check(n, &edges, 4);
        }
    }

    #[test]
    fn runs_on_the_em_engine_too() {
        let edges = vec![(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2), (0, 4)];
        let (got, rep) =
            cgm_biconnected_components(5, &edges, 3, Exec::SeqEm { d: 2, block_bytes: 256 });
        let (want, _) = biconnected_components(5, &edges);
        same_partition(&got, &want);
        assert!(rep.io_ops > 0);
    }

    /// Validate the ear-decomposition properties (the decomposition is
    /// tree-dependent, so ids cannot be compared with the sequential
    /// reference, which picks a different spanning tree — the defining
    /// properties are the specification).
    fn validate_ears(n: usize, edges: &[(u64, u64)], ears: &[u32]) {
        let num_ears = *ears.iter().max().unwrap() + 1;
        let mut on_earlier: Vec<Option<u32>> = vec![None; n];
        for ear in 0..num_ears {
            let ear_edges: Vec<(u64, u64)> =
                edges.iter().zip(ears).filter(|&(_, &e)| e == ear).map(|(&ed, _)| ed).collect();
            assert!(!ear_edges.is_empty(), "ear {ear} empty");
            let mut deg = std::collections::HashMap::new();
            for &(a, b) in &ear_edges {
                *deg.entry(a).or_insert(0u32) += 1;
                *deg.entry(b).or_insert(0u32) += 1;
            }
            let odd: Vec<u64> = deg.iter().filter(|(_, &d)| d % 2 == 1).map(|(&v, _)| v).collect();
            if ear == 0 {
                assert!(odd.is_empty(), "ear 0 must be a cycle");
                assert!(deg.values().all(|&x| x == 2));
            } else {
                assert_eq!(odd.len(), 2, "ear {ear} must be a simple path: {deg:?}");
                assert!(deg.values().all(|&x| x <= 2));
                for (&vx, &dv) in &deg {
                    let earlier = on_earlier[vx as usize].map(|e| e < ear).unwrap_or(false);
                    if dv == 1 {
                        assert!(earlier, "endpoint {vx} of ear {ear} not on earlier ear");
                    } else {
                        assert!(!earlier, "internal vertex {vx} of ear {ear} reused");
                    }
                }
            }
            for &vx in deg.keys() {
                on_earlier[vx as usize].get_or_insert(ear);
            }
        }
    }

    #[test]
    fn ear_decomposition_is_valid_on_biconnected_graphs() {
        // cycle, K4, random 2-connected graphs
        let mut cases: Vec<(usize, Vec<(u64, u64)>)> = vec![
            (6, (0..6).map(|i| (i, (i + 1) % 6)).collect()),
            (4, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]),
        ];
        for seed in 0..4u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 24u64;
            let mut edges: Vec<(u64, u64)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
            let mut seen: std::collections::HashSet<(u64, u64)> =
                edges.iter().map(|&(a, b)| (a.min(b), a.max(b))).collect();
            for _ in 0..15 {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                if a != b && seen.insert((a.min(b), a.max(b))) {
                    edges.push((a.min(b), a.max(b)));
                }
            }
            cases.push((n as usize, edges));
        }
        for (n, edges) in cases {
            let (got, rep) = cgm_open_ear_decomposition(n, &edges, 4, Exec::Direct);
            let got = got.expect("2-edge-connected");
            // m - n + 1 ears, like the reference
            assert_eq!(*got.iter().max().unwrap() as usize + 1, edges.len() - n + 1, "ear count");
            validate_ears(n, &edges, &got);
            assert!(rep.rounds > 0);
        }
    }

    #[test]
    fn ear_decomposition_rejects_bridges() {
        // two triangles joined by a bridge
        let edges = vec![(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)];
        let (got, _) = cgm_open_ear_decomposition(6, &edges, 3, Exec::Direct);
        assert!(got.is_none());
    }

    #[test]
    fn ear_decomposition_on_em_engine() {
        let edges: Vec<(u64, u64)> = {
            let mut e: Vec<(u64, u64)> = (0..8).map(|i| (i, (i + 1) % 8)).collect();
            e.push((0, 4));
            e.push((2, 6));
            e
        };
        let (got, rep) =
            cgm_open_ear_decomposition(8, &edges, 3, Exec::SeqEm { d: 2, block_bytes: 256 });
        validate_ears(8, &edges, &got.unwrap());
        assert!(rep.io_ops > 0);
    }

    #[test]
    fn root_tree_produces_valid_parents() {
        for seed in 0..4u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 60usize;
            let edges: Vec<(u64, u64)> = (1..n as u64).map(|x| (rng.gen_range(0..x), x)).collect();
            let states: Vec<RootTreeState> = block_split(edges.clone(), 5)
                .into_iter()
                .map(|eb| {
                    ((vec![n as u64, edges.len() as u64], eb, Vec::new()), (Vec::new(), Vec::new()))
                })
                .collect();
            let (fin, _) = DirectRunner::default().run(&CgmRootTree, states).unwrap();
            let parent: Vec<u64> = fin.iter().flat_map(|(_, (_, p))| p.iter().copied()).collect();
            assert_eq!(parent[0], 0);
            // every parent relation is a tree edge, and all vertices
            // reach the root
            let eset: std::collections::HashSet<(u64, u64)> =
                edges.iter().map(|&(a, b)| (a.min(b), a.max(b))).collect();
            for x in 1..n as u64 {
                let p = parent[x as usize];
                assert!(eset.contains(&(p.min(x), p.max(x))), "({p},{x}) not an edge");
            }
            for mut x in 0..n as u64 {
                for _ in 0..n {
                    if x == 0 {
                        break;
                    }
                    x = parent[x as usize];
                }
                assert_eq!(x, 0);
            }
        }
    }
}
