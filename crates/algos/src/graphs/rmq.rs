//! Distributed range-min/max over an indexed value array — the CGM
//! doubling sparse table used for the subtree aggregates of
//! Tarjan–Vishkin biconnectivity (low/high/cover values are range
//! queries over preorder space).
//!
//! Values `(index, val)` arrive in arbitrary distribution; they are
//! routed to their index-block owner, a doubling table
//! `st[k][i] = agg(values[i .. i+2^k])` is built in `2⌈log₂ n⌉`
//! request/reply rounds, and each query `[l, r)` is answered with the
//! classic two overlapping power-of-two windows.

use cgmio_model::{CgmProgram, RoundCtx, Status};

use super::{jump_iters, owner};
use cgmio_data::block_split_ranges;

/// Messages `[tag, a, b, c, d]`.
type Msg = [u64; 5];

const ROUTE: u64 = 0; // [_, index, val, 0, 0]
const REQ: u64 = 1; // [_, index, corr, level, 0]
const RPL: u64 = 2; // [_, corr, min, max, 0]
const QRY: u64 = 3; // same frame as REQ but answered from level `level`
const ANS: u64 = 4; // [_, qid, min, max, side]

/// State: `((n, values_in as (idx, val), queries as (qid, l, r)),
/// (st_min, st_max), answers as (qid, min, max))`.
pub type RmqState = ((u64, Vec<(u64, u64)>, Vec<[u64; 3]>), (Vec<u64>, Vec<u64>), Vec<[u64; 3]>);

/// The distributed range-min/max program. Missing indices behave as
/// neutral elements (`u64::MAX` for min, `0` for max).
#[derive(Debug, Clone, Copy, Default)]
pub struct CgmRangeMinMax;

fn query_round(n: usize) -> usize {
    // 0: route; 2k+1 (k = 0..kk−1): install level k, request level k+1;
    // 2k+2: replies; 2·kk+1: install level kk and issue queries;
    // 2·kk+2: query replies; 2·kk+3: fold → Done.
    2 * jump_iters(n) + 1
}

impl CgmProgram for CgmRangeMinMax {
    type Msg = Msg;
    type State = RmqState;

    fn round(&self, ctx: &mut RoundCtx<'_, Msg>, state: &mut RmqState) -> Status {
        let v = ctx.v;
        let n = state.0 .0 as usize;
        let my_range = block_split_ranges(n, v, ctx.pid);
        let nl = my_range.len();
        let kk = jump_iters(n);
        let qr = query_round(n);

        if ctx.round == 0 {
            for &(idx, val) in &state.0 .1 {
                ctx.push(owner(n, v, idx as usize), [ROUTE, idx, val, 0, 0]);
            }
            state.0 .1.clear();
            return Status::Continue;
        }

        // Even rounds answer table lookups (REQ during the build, QRY
        // right after the query round).
        if ctx.round.is_multiple_of(2) {
            let mut replies: Vec<(usize, Msg)> = Vec::new();
            for (src, items) in ctx.incoming.iter() {
                for &[tag, index, corr, level, _] in items {
                    debug_assert!(tag == REQ || tag == QRY);
                    let li = index as usize - my_range.start;
                    let off = level as usize * nl + li;
                    let (mn, mx) = (state.1 .0[off], state.1 .1[off]);
                    let rtag = if tag == REQ { RPL } else { ANS };
                    replies.push((src, [rtag, corr, mn, mx, 0]));
                }
            }
            for (dst, msg) in replies {
                ctx.push(dst, msg);
            }
            return Status::Continue;
        }

        // Odd round 2k+1: install level k, then request level k+1 (or
        // issue queries when the table is complete).
        if ctx.round <= qr {
            let k = ctx.round / 2;
            if k == 0 {
                state.1 .0 = vec![u64::MAX; (kk + 1) * nl.max(1)];
                state.1 .1 = vec![0u64; (kk + 1) * nl.max(1)];
                for (_src, items) in ctx.incoming.iter() {
                    for &[tag, idx, val, _, _] in items {
                        debug_assert_eq!(tag, ROUTE);
                        let li = idx as usize - my_range.start;
                        state.1 .0[li] = state.1 .0[li].min(val);
                        state.1 .1[li] = state.1 .1[li].max(val);
                    }
                }
            } else {
                // replies carry st[k−1][i + 2^(k−1)]
                for (_src, items) in ctx.incoming.iter() {
                    for &[tag, corr, mn, mx, _] in items {
                        debug_assert_eq!(tag, RPL);
                        let li = corr as usize;
                        let prev = (k - 1) * nl + li;
                        state.1 .0[k * nl + li] = state.1 .0[prev].min(mn);
                        state.1 .1[k * nl + li] = state.1 .1[prev].max(mx);
                    }
                }
            }
            if ctx.round < qr {
                // build level k+1: fetch st[k][i + 2^k]
                for li in 0..nl {
                    let i = my_range.start + li;
                    let j = i + (1usize << k);
                    if j < n {
                        ctx.push(owner(n, v, j), [REQ, j as u64, li as u64, k as u64, 0]);
                    } else {
                        state.1 .0[(k + 1) * nl + li] = state.1 .0[k * nl + li];
                        state.1 .1[(k + 1) * nl + li] = state.1 .1[k * nl + li];
                    }
                }
            } else {
                // table complete: issue the two window lookups per query
                state.2 = state.0 .2.iter().map(|q| [q[0], u64::MAX, 0]).collect();
                for (slot, q) in state.0 .2.iter().enumerate() {
                    let (l, r) = (q[1] as usize, q[2] as usize);
                    if l >= r {
                        continue; // empty range: neutral answer
                    }
                    let span = r - l;
                    let k = ((usize::BITS - 1 - span.leading_zeros()) as usize).min(kk);
                    let a = l;
                    let b = r - (1 << k);
                    ctx.push(owner(n, v, a), [QRY, a as u64, 2 * slot as u64, k as u64, 0]);
                    if b != a {
                        ctx.push(owner(n, v, b), [QRY, b as u64, 2 * slot as u64 + 1, k as u64, 0]);
                    }
                }
            }
            return Status::Continue;
        }

        // final round qr + 2: fold the window answers
        debug_assert_eq!(ctx.round, qr + 2);
        for (_src, items) in ctx.incoming.iter() {
            for &[tag, corr, mn, mx, _] in items {
                debug_assert_eq!(tag, ANS);
                let slot = corr as usize / 2;
                state.2[slot][1] = state.2[slot][1].min(mn);
                state.2[slot][2] = state.2[slot][2].max(mx);
            }
        }
        Status::Done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgmio_data::block_split;
    use cgmio_model::DirectRunner;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn run(n: usize, vals: &[(u64, u64)], queries: &[[u64; 3]], v: usize) -> Vec<[u64; 3]> {
        let states: Vec<RmqState> = block_split(vals.to_vec(), v)
            .into_iter()
            .zip(block_split(queries.to_vec(), v))
            .map(|(vb, qb)| ((n as u64, vb, qb), (Vec::new(), Vec::new()), Vec::new()))
            .collect();
        let (fin, _) = DirectRunner::default().run(&CgmRangeMinMax, states).unwrap();
        let mut out: Vec<[u64; 3]> = fin.into_iter().flat_map(|(_, _, a)| a).collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn matches_naive_on_random_arrays() {
        let mut rng = StdRng::seed_from_u64(1);
        for &(n, v) in &[(50usize, 4usize), (200, 7), (33, 3)] {
            let arr: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1000)).collect();
            let vals: Vec<(u64, u64)> =
                arr.iter().enumerate().map(|(i, &x)| (i as u64, x)).collect();
            let queries: Vec<[u64; 3]> = (0..60u64)
                .map(|qid| {
                    let l = rng.gen_range(0..n as u64);
                    let r = rng.gen_range(l..=n as u64);
                    [qid, l, r]
                })
                .collect();
            let got = run(n, &vals, &queries, v);
            for q in &queries {
                let (qid, l, r) = (q[0], q[1] as usize, q[2] as usize);
                let want_min = arr[l..r].iter().copied().min().unwrap_or(u64::MAX);
                let want_max = arr[l..r].iter().copied().max().unwrap_or(0);
                let row = got.iter().find(|a| a[0] == qid).unwrap();
                assert_eq!(row[1], want_min, "n={n} q={q:?}");
                assert_eq!(row[2], want_max, "n={n} q={q:?}");
            }
        }
    }

    #[test]
    fn sparse_values_use_neutral_elements() {
        // only index 3 has a value
        let got = run(8, &[(3, 42)], &[[0, 0, 8], [1, 4, 8], [2, 3, 4]], 3);
        assert_eq!(got[0], [0, 42, 42]);
        assert_eq!(got[1], [1, u64::MAX, 0]);
        assert_eq!(got[2], [2, 42, 42]);
    }

    #[test]
    fn empty_ranges_and_tiny_n() {
        let got = run(1, &[(0, 5)], &[[0, 0, 0], [1, 0, 1]], 1);
        assert_eq!(got[0], [0, u64::MAX, 0]);
        assert_eq!(got[1], [1, 5, 5]);
    }
}
