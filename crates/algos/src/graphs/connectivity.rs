//! CGM connected components and spanning forest by min-label hooking
//! with pointer-jumping shortcuts (Figure 5 Group C row 2).
//!
//! Vertices and edges are both block-distributed. Each iteration spends
//! six rounds:
//!
//! 1. edge owners query the current labels of their edges' endpoints,
//! 2. vertex owners reply,
//! 3. edge owners propose hooks `label[max(lu,lv)] ← min(lu,lv)`,
//! 4. vertex owners apply the best proposal per target (recording the
//!    hooking edge the *first* time a vertex loses its root status —
//!    those edges form a spanning forest) and issue shortcut queries
//!    `label[label[x]]`,
//! 5. owners reply,
//! 6. owners apply shortcuts and broadcast whether anything changed.
//!
//! Labels only decrease, hooks go to strictly smaller labels, and the
//! shortcut halves label-chain depth, so the fixpoint (`O(log n)`
//! iterations) labels every vertex with the minimum vertex id of its
//! component.

use cgmio_model::{CgmProgram, RoundCtx, Status};

use super::owner;
use cgmio_data::block_split_ranges;

/// Message: `(tag, a, b, c)` — see the round constants below.
type Msg = (u64, u64, u64, u64);

const QLABEL: u64 = 0; // (QLABEL, vertex, edge_slot, end): what's vertex's label?
const RLABEL: u64 = 1; // (RLABEL, edge_slot, label, end)
const PROPOSE: u64 = 2; // (PROPOSE, root, new_label, edge_id)
const QSHORT: u64 = 3; // (QSHORT, target, asker, 0)
const RSHORT: u64 = 4; // (RSHORT, asker, label_of_target, 0)
const CHANGED: u64 = 5; // (CHANGED, count, 0, 0)

/// State of one processor:
/// `((n_vertices, labels, forest_edge_ids), (n_edges, edge_endpoints, scratch))`.
///
/// * `labels` — current label of each owned vertex; at completion, the
///   minimum vertex id of its component.
/// * `forest_edge_ids` — global ids of the spanning-forest edges this
///   processor recorded.
/// * `edge_endpoints` — the owned block of the edge list, as `(u, v)`.
/// * `scratch` — per-owned-edge endpoint labels gathered this iteration
///   (`2` entries per edge, `u64::MAX` when unknown).
pub type ConnState = ((u64, Vec<u64>, Vec<u64>), (u64, Vec<(u64, u64)>, Vec<u64>));

/// The hook-and-shortcut connectivity program.
#[derive(Debug, Clone, Copy, Default)]
pub struct CgmConnectivity;

impl CgmProgram for CgmConnectivity {
    type Msg = Msg;
    type State = ConnState;

    fn round(&self, ctx: &mut RoundCtx<'_, Msg>, state: &mut ConnState) -> Status {
        let v = ctx.v;
        let n = state.0 .0 as usize;
        let m = state.1 .0 as usize;
        let my_verts = block_split_ranges(n, v, ctx.pid);
        let my_edges = block_split_ranges(m, v, ctx.pid);
        let phase = ctx.round % 6;

        match phase {
            0 => {
                // Convergence check (skipped in iteration 0), then edge
                // owners query endpoint labels.
                if ctx.round > 0 {
                    let total: u64 = ctx
                        .incoming
                        .iter()
                        .flat_map(|(_, items)| items.iter())
                        .map(|&(tag, count, _, _)| {
                            debug_assert_eq!(tag, CHANGED);
                            count
                        })
                        .sum();
                    if total == 0 {
                        return Status::Done;
                    }
                }
                state.1 .2 = vec![u64::MAX; 2 * my_edges.len()];
                for (slot, &(a, b)) in state.1 .1.iter().enumerate() {
                    ctx.push(owner(n, v, a as usize), (QLABEL, a, slot as u64, 0));
                    ctx.push(owner(n, v, b as usize), (QLABEL, b, slot as u64, 1));
                }
                Status::Continue
            }
            1 => {
                // Vertex owners answer label queries.
                let mut replies: Vec<(usize, Msg)> = Vec::new();
                for (src, items) in ctx.incoming.iter() {
                    for &(_, vertex, slot, end) in items {
                        let li = vertex as usize - my_verts.start;
                        replies.push((src, (RLABEL, slot, state.0 .1[li], end)));
                    }
                }
                for (dst, msg) in replies {
                    ctx.push(dst, msg);
                }
                Status::Continue
            }
            2 => {
                // Edge owners assemble labels and propose hooks.
                for (_src, items) in ctx.incoming.iter() {
                    for &(_, slot, label, end) in items {
                        state.1 .2[2 * slot as usize + end as usize] = label;
                    }
                }
                for slot in 0..my_edges.len() {
                    let (lu, lv) = (state.1 .2[2 * slot], state.1 .2[2 * slot + 1]);
                    if lu != lv {
                        let (lo, hi) = (lu.min(lv), lu.max(lv));
                        let edge_id = (my_edges.start + slot) as u64;
                        ctx.push(owner(n, v, hi as usize), (PROPOSE, hi, lo, edge_id));
                    }
                }
                Status::Continue
            }
            3 => {
                // Vertex owners apply the best proposal per target,
                // recording forest edges on first de-rooting, then issue
                // shortcut queries.
                // BTreeMap keeps the apply order deterministic, so final
                // states are identical across all runners.
                let mut best: std::collections::BTreeMap<u64, (u64, u64)> =
                    std::collections::BTreeMap::new();
                for (_src, items) in ctx.incoming.iter() {
                    for &(_, root, new_label, edge_id) in items {
                        best.entry(root)
                            .and_modify(|cur| *cur = (*cur).min((new_label, edge_id)))
                            .or_insert((new_label, edge_id));
                    }
                }
                for (root, (new_label, edge_id)) in best {
                    let li = root as usize - my_verts.start;
                    if new_label < state.0 .1[li] {
                        if state.0 .1[li] == root {
                            state.0 .2.push(edge_id);
                        }
                        state.0 .1[li] = new_label;
                    }
                }
                for (i, &l) in state.0 .1.iter().enumerate() {
                    let x = (my_verts.start + i) as u64;
                    if l != x {
                        ctx.push(owner(n, v, l as usize), (QSHORT, l, x, 0));
                    }
                }
                Status::Continue
            }
            4 => {
                // Owners answer shortcut queries.
                let mut replies: Vec<(usize, Msg)> = Vec::new();
                for (_src, items) in ctx.incoming.iter() {
                    for &(_, target, asker, _) in items {
                        let li = target as usize - my_verts.start;
                        replies.push((
                            owner(n, v, asker as usize),
                            (RSHORT, asker, state.0 .1[li], 0),
                        ));
                    }
                }
                for (dst, msg) in replies {
                    ctx.push(dst, msg);
                }
                Status::Continue
            }
            _ => {
                // Apply shortcuts; broadcast whether this processor saw
                // any change this iteration (hook or shortcut). Labels
                // changed by hooks are detected by comparing against the
                // iteration-start snapshot held in edge scratch? — we
                // track changes directly:
                let mut changed = 0u64;
                for (_src, items) in ctx.incoming.iter() {
                    for &(_, asker, new_label, _) in items {
                        let li = asker as usize - my_verts.start;
                        if new_label < state.0 .1[li] {
                            state.0 .1[li] = new_label;
                            changed += 1;
                        }
                    }
                }
                // Hook-phase changes also count: recompute from scratch
                // labels — an edge with differing endpoint labels at
                // query time means the iteration was still active.
                for slot in 0..my_edges.len() {
                    if state.1 .2.get(2 * slot).copied().unwrap_or(u64::MAX)
                        != state.1 .2.get(2 * slot + 1).copied().unwrap_or(u64::MAX)
                    {
                        changed += 1;
                    }
                }
                for dst in 0..v {
                    ctx.push(dst, (CHANGED, changed, 0, 0));
                }
                Status::Continue
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgmio_data::{block_split, gnm_edges};
    use cgmio_graph::cc_labels;
    use cgmio_model::{DirectRunner, ThreadedRunner};

    fn init(n: usize, edges: &[(u64, u64)], v: usize) -> Vec<ConnState> {
        let vert_blocks = block_split((0..n as u64).collect::<Vec<_>>(), v);
        let edge_blocks = block_split(edges.to_vec(), v);
        vert_blocks
            .into_iter()
            .zip(edge_blocks)
            .map(|(vb, eb)| ((n as u64, vb, Vec::new()), (edges.len() as u64, eb, Vec::new())))
            .collect()
    }

    fn labels_of(fin: &[ConnState]) -> Vec<u64> {
        fin.iter().flat_map(|((_, l, _), _)| l.iter().copied()).collect()
    }

    fn forest_of(fin: &[ConnState], edges: &[(u64, u64)]) -> Vec<(u64, u64)> {
        fin.iter().flat_map(|((_, _, f), _)| f.iter().map(|&e| edges[e as usize])).collect()
    }

    #[test]
    fn components_match_reference() {
        for (n, m, v, seed) in [(100, 150, 8, 1u64), (200, 100, 6, 2), (50, 300, 4, 3)] {
            let edges = gnm_edges(n, m, seed);
            let want = cc_labels(n, &edges);
            let (fin, costs) =
                DirectRunner::default().run(&CgmConnectivity, init(n, &edges, v)).unwrap();
            assert_eq!(labels_of(&fin), want, "n={n} m={m}");
            // O(log n) iterations of 6 rounds
            assert!(costs.lambda() <= 6 * (2 * super::super::jump_iters(n) + 3));
        }
    }

    #[test]
    fn spanning_forest_is_valid() {
        let n = 150;
        let edges = gnm_edges(n, 250, 7);
        let (fin, _) = DirectRunner::default().run(&CgmConnectivity, init(n, &edges, 6)).unwrap();
        let forest = forest_of(&fin, &edges);
        let want_labels = cc_labels(n, &edges);
        let comp_count = {
            let mut u = want_labels.clone();
            u.sort_unstable();
            u.dedup();
            u.len()
        };
        assert_eq!(forest.len(), n - comp_count, "forest edge count");
        // forest connects exactly the same components
        assert_eq!(cc_labels(n, &forest), want_labels);
    }

    #[test]
    fn edgeless_graph() {
        let (fin, costs) = DirectRunner::default().run(&CgmConnectivity, init(5, &[], 3)).unwrap();
        assert_eq!(labels_of(&fin), vec![0, 1, 2, 3, 4]);
        assert!(forest_of(&fin, &[]).is_empty());
        assert!(costs.lambda() <= 12);
    }

    #[test]
    fn single_path_worst_case() {
        // A path stresses the shortcutting: still O(log n) iterations.
        let n = 128;
        let edges: Vec<(u64, u64)> = (0..n as u64 - 1).map(|i| (i, i + 1)).collect();
        let (fin, costs) =
            DirectRunner::default().run(&CgmConnectivity, init(n, &edges, 8)).unwrap();
        assert!(labels_of(&fin).iter().all(|&l| l == 0));
        let iters = costs.lambda() / 6 + 1;
        assert!(iters <= 2 * super::super::jump_iters(n) + 3, "iters = {iters}");
        let forest = forest_of(&fin, &edges);
        assert_eq!(forest.len(), n - 1);
    }

    #[test]
    fn works_on_threads() {
        let n = 80;
        let edges = gnm_edges(n, 120, 5);
        let want = cc_labels(n, &edges);
        let (fin, _) = ThreadedRunner::new(4).run(&CgmConnectivity, init(n, &edges, 8)).unwrap();
        assert_eq!(labels_of(&fin), want);
    }

    #[test]
    fn two_cliques() {
        let mut edges = Vec::new();
        for i in 0..5u64 {
            for j in i + 1..5 {
                edges.push((i, j));
                edges.push((i + 5, j + 5));
            }
        }
        let (fin, _) = DirectRunner::default().run(&CgmConnectivity, init(10, &edges, 4)).unwrap();
        let l = labels_of(&fin);
        assert!(l[..5].iter().all(|&x| x == 0));
        assert!(l[5..].iter().all(|&x| x == 5));
    }
}
