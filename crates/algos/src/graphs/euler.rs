//! CGM Euler tour of a tree (Figure 5 Group C row 1's "Euler tour")
//! with weighted list ranking: computes every node's depth and every
//! tour arc's position in `O(log N)` rounds.
//!
//! Construction: each tree edge `{x, parent(x)}` contributes an up-arc
//! `2x` (`x → parent`) and a down-arc `2x+1` (`parent → x`). The tour
//! successor of an arc entering vertex `w` from neighbour `u` leaves `w`
//! toward the next neighbour after `u` in the cyclic order
//! `[children ascending…, parent]`; cutting at the root makes the cycle
//! a path. Weighted pointer jumping (weights +1 down, −1 up) then gives
//! suffix sums from which depths and tour positions fall out.

use cgmio_model::{CgmProgram, RoundCtx, Status};

use super::{jump_iters, owner};
use cgmio_data::block_split_ranges;

/// Messages are `[tag, a, b, c, d]`.
type Msg = [u64; 5];

const ANNOUNCE: u64 = 0; // [_, child, parent, 0, 0]
const SETSUCC: u64 = 1; // [_, arc, succ, 0, 0]
const REQ: u64 = 2; // [_, target_arc, asker_arc, 0, 0]
const RPL: u64 = 3; // [_, asker_arc, valw, val2, succ]
const TAILARC: u64 = 4; // [_, tail_arc, 0, 0, 0] broadcast by the root owner

/// State:
/// `((meta = [n, tail_arc], parent_block, depth_out), (arc_succ, arc_valw, arc_val2))`.
///
/// Arc arrays hold 2 entries per owned node (`2x`, `2x+1`); `valw` is an
/// `i64` stored as two's-complement `u64`. Sums are tail-exclusive (the
/// tail arc's values are pinned to 0), so a node's depth is
/// `2 − valw[2x+1]` and the tour position of arc `a` is
/// `2(n−1) − 1 − val2[a]`. As in list ranking, pointers that reach the
/// tail stop requesting — this both avoids double counting past the
/// tail's self-loop and keeps every round an `O(N/v)` h-relation.
pub type EulerState = ((Vec<u64>, Vec<u64>, Vec<u64>), (Vec<u64>, Vec<u64>, Vec<u64>));

/// The Euler-tour program.
#[derive(Debug, Clone, Copy, Default)]
pub struct CgmEulerTour;

/// Tour position of an arc given its final `val2` entry.
pub fn tour_position(n: usize, val2: u64) -> u64 {
    (2 * (n as u64 - 1) - 1).wrapping_sub(val2)
}

impl CgmProgram for CgmEulerTour {
    type Msg = Msg;
    type State = EulerState;

    fn round(&self, ctx: &mut RoundCtx<'_, Msg>, state: &mut EulerState) -> Status {
        let v = ctx.v;
        let n = state.0 .0[0] as usize;
        let my_range = block_split_ranges(n, v, ctx.pid);
        let arc_owner = |arc: u64| owner(n, v, (arc / 2) as usize);
        let iters = jump_iters(2 * n);

        match ctx.round {
            0 => {
                // Announce children to parent owners.
                for (i, &p) in state.0 .1.iter().enumerate() {
                    let x = (my_range.start + i) as u64;
                    if p != x {
                        ctx.push(owner(n, v, p as usize), [ANNOUNCE, x, p, 0, 0]);
                    }
                }
                Status::Continue
            }
            1 => {
                // Build children lists and compute arc successors.
                let mut children: Vec<Vec<u64>> = vec![Vec::new(); my_range.len()];
                for (_src, items) in ctx.incoming.iter() {
                    for &[_, child, parent, _, _] in items {
                        children[parent as usize - my_range.start].push(child);
                    }
                }
                for c in &mut children {
                    c.sort_unstable();
                }
                // Initialise local arc arrays (inert self-loops).
                let nl = my_range.len();
                state.1 .0 = (0..2 * nl).map(|a| (2 * my_range.start + a) as u64).collect();
                state.1 .1 = vec![0u64; 2 * nl];
                state.1 .2 = vec![0u64; 2 * nl];

                for (i, kids) in children.iter().enumerate() {
                    let w = (my_range.start + i) as u64;
                    let is_root = state.0 .1[i] == w;
                    // Arc entering w from its parent: 2w+1 (local).
                    if !is_root {
                        let succ = match kids.first() {
                            Some(&c1) => 2 * c1 + 1,
                            None => 2 * w,
                        };
                        state.1 .0[2 * i + 1] = succ;
                        state.1 .1[2 * i + 1] = 1u64; // down-arc weight +1
                        state.1 .2[2 * i + 1] = 1;
                        // Up-arc 2w gets weight −1; its successor is set
                        // by the owner of w's parent (or below if local).
                        state.1 .1[2 * i] = (-1i64) as u64;
                        state.1 .2[2 * i] = 1;
                    }
                    // Arcs entering w from each child.
                    for (j, &c) in kids.iter().enumerate() {
                        let succ = if j + 1 < kids.len() {
                            2 * kids[j + 1] + 1
                        } else if !is_root {
                            2 * w
                        } else {
                            // tail: self-loop the last up-arc into the
                            // root, and tell everyone which arc it is
                            for dst in 0..ctx.v {
                                ctx.push(dst, [TAILARC, 2 * c, 0, 0, 0]);
                            }
                            2 * c
                        };
                        ctx.push(arc_owner(2 * c), [SETSUCC, 2 * c, succ, 0, 0]);
                    }
                }
                Status::Continue
            }
            r => {
                let k = (r - 2) / 2;
                if (r - 2) % 2 == 1 {
                    // Reply phase.
                    let mut replies: Vec<(usize, Msg)> = Vec::new();
                    for (_src, items) in ctx.incoming.iter() {
                        for &[_, target, asker, _, _] in items {
                            let li = target as usize - 2 * my_range.start;
                            replies.push((
                                arc_owner(asker),
                                [RPL, asker, state.1 .1[li], state.1 .2[li], state.1 .0[li]],
                            ));
                        }
                    }
                    for (dst, msg) in replies {
                        ctx.push(dst, msg);
                    }
                    return Status::Continue;
                }
                // Even phase: apply, then request (or finish).
                if k == 0 {
                    for (_src, items) in ctx.incoming.iter() {
                        for &[tag, arc, succ, _, _] in items {
                            match tag {
                                SETSUCC => {
                                    let li = arc as usize - 2 * my_range.start;
                                    state.1 .0[li] = succ;
                                    if succ == arc {
                                        // tail arc: tail-exclusive sums
                                        state.1 .1[li] = 0;
                                        state.1 .2[li] = 0;
                                    }
                                }
                                TAILARC => {
                                    if state.0 .0.len() < 2 {
                                        state.0 .0.push(arc);
                                    } else {
                                        state.0 .0[1] = arc;
                                    }
                                }
                                _ => unreachable!(),
                            }
                        }
                    }
                } else {
                    for (_src, items) in ctx.incoming.iter() {
                        for &[tag, asker, valw, val2, succ] in items {
                            debug_assert_eq!(tag, RPL);
                            let li = asker as usize - 2 * my_range.start;
                            state.1 .1[li] = state.1 .1[li].wrapping_add(valw);
                            state.1 .2[li] = state.1 .2[li].wrapping_add(val2);
                            state.1 .0[li] = succ;
                        }
                    }
                }
                if k == iters {
                    // Extract depths: prefix-inclusive weight at the
                    // down-arc 2x+1 equals w − w_tail − val = 2 − valw.
                    state.0 .2 = (0..my_range.len())
                        .map(|i| {
                            let x = (my_range.start + i) as u64;
                            if state.0 .1[i] == x {
                                0
                            } else {
                                2u64.wrapping_sub(state.1 .1[2 * i + 1])
                            }
                        })
                        .collect();
                    return Status::Done;
                }
                let tail = state.0 .0.get(1).copied().unwrap_or(u64::MAX);
                for (li, &s) in state.1 .0.iter().enumerate() {
                    let a = (2 * my_range.start + li) as u64;
                    if s != a && s != tail {
                        ctx.push(arc_owner(s), [REQ, s, a, 0, 0]);
                    }
                }
                Status::Continue
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgmio_data::{block_split, random_tree_parents};
    use cgmio_graph::{depths_from_parents, euler_tour, Tree};
    use cgmio_model::{DirectRunner, ThreadedRunner};

    fn init(parent: &[u64], v: usize) -> Vec<EulerState> {
        block_split(parent.to_vec(), v)
            .into_iter()
            .map(|b| {
                ((vec![parent.len() as u64], b, Vec::new()), (Vec::new(), Vec::new(), Vec::new()))
            })
            .collect()
    }

    fn depths_of(fin: &[EulerState]) -> Vec<u64> {
        fin.iter().flat_map(|((_, _, d), _)| d.iter().copied()).collect()
    }

    /// Reference arc sequence of the tour: arc ids in tour order.
    fn reference_arc_order(parent: &[u64]) -> Vec<u64> {
        let tree = Tree::from_parents(parent);
        let (tour, _) = euler_tour(&tree);
        tour.windows(2)
            .map(|w| {
                let (a, b) = (w[0], w[1]);
                if parent[b as usize] == a {
                    2 * b + 1 // down
                } else {
                    2 * a // up
                }
            })
            .collect()
    }

    #[test]
    fn depths_match_reference() {
        for (n, v, seed) in [(200, 8, 1u64), (63, 5, 2), (500, 6, 3)] {
            let parent = random_tree_parents(n, seed);
            let want = depths_from_parents(&parent);
            let (fin, _) = DirectRunner::default().run(&CgmEulerTour, init(&parent, v)).unwrap();
            assert_eq!(depths_of(&fin), want, "n={n} seed={seed}");
        }
    }

    #[test]
    fn tour_positions_match_reference() {
        let n = 120;
        let parent = random_tree_parents(n, 4);
        let want_order = reference_arc_order(&parent);
        let (fin, _) = DirectRunner::default().run(&CgmEulerTour, init(&parent, 7)).unwrap();
        // gather final val2 per arc
        let val2: Vec<u64> = fin.iter().flat_map(|(_, (_, _, v2))| v2.iter().copied()).collect();
        let mut got: Vec<(u64, u64)> =
            want_order.iter().map(|&arc| (tour_position(n, val2[arc as usize]), arc)).collect();
        got.sort_unstable();
        let got_order: Vec<u64> = got.iter().map(|&(_, a)| a).collect();
        assert_eq!(got_order, want_order);
        // positions are exactly 0..2(n-1)
        for (i, &(pos, _)) in got.iter().enumerate() {
            assert_eq!(pos, i as u64);
        }
    }

    #[test]
    fn path_and_star_trees() {
        // path: 0 <- 1 <- 2 <- 3
        let parent = vec![0, 0, 1, 2];
        let (fin, _) = DirectRunner::default().run(&CgmEulerTour, init(&parent, 2)).unwrap();
        assert_eq!(depths_of(&fin), vec![0, 1, 2, 3]);
        // star: all children of 0
        let parent = vec![0, 0, 0, 0, 0];
        let (fin, _) = DirectRunner::default().run(&CgmEulerTour, init(&parent, 3)).unwrap();
        assert_eq!(depths_of(&fin), vec![0, 1, 1, 1, 1]);
    }

    #[test]
    fn single_node_tree() {
        let (fin, _) = DirectRunner::default().run(&CgmEulerTour, init(&[0], 1)).unwrap();
        assert_eq!(depths_of(&fin), vec![0]);
    }

    #[test]
    fn works_on_threads() {
        let parent = random_tree_parents(150, 8);
        let want = depths_from_parents(&parent);
        let (fin, _) = ThreadedRunner::new(4).run(&CgmEulerTour, init(&parent, 6)).unwrap();
        assert_eq!(depths_of(&fin), want);
    }
}
