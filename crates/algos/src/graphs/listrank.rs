//! CGM list ranking by pointer jumping (Figure 5 Group C row 1).
//!
//! Nodes of a linked list (successor array, tail self-looped) are
//! block-distributed. The tail's id is broadcast first; thereafter
//! `⌈log₂ n⌉` jump iterations of two rounds each (request / reply) give
//! every node its distance to the tail.
//!
//! The tail broadcast is what keeps every round a genuine `O(N/v)`
//! h-relation: a node whose pointer has reached the tail stops
//! requesting (its rank is final), and any *other* node is the
//! `2^k`-successor of at most one node, so no processor ever receives
//! more than one request per owned node per round.

use cgmio_model::{CgmProgram, RoundCtx, Status};

use super::{jump_iters, owner};
use cgmio_data::block_split_ranges;

/// State: `(meta = [n, tail], succ_block, rank_block)`. On completion
/// `rank[x]` is the distance from `x` to the tail (tail = 0).
pub type ListRankState = (Vec<u64>, Vec<u64>, Vec<u64>);

/// The pointer-jumping list ranker.
#[derive(Debug, Clone, Copy, Default)]
pub struct CgmListRank;

impl CgmProgram for CgmListRank {
    /// Round 0: `(tail_id, 0, 0)` broadcast.
    /// Odd rounds: `(target_node, asker, 0)` requests.
    /// Even rounds ≥ 2: `(asker, rank_of_target, succ_of_target)` replies.
    type Msg = (u64, u64, u64);
    type State = ListRankState;

    fn round(&self, ctx: &mut RoundCtx<'_, (u64, u64, u64)>, state: &mut ListRankState) -> Status {
        let v = ctx.v;
        let n = state.0[0] as usize;
        let my_range = block_split_ranges(n, v, ctx.pid);
        let iters = jump_iters(n);

        if ctx.round == 0 {
            // Initialise ranks and broadcast the tail id.
            state.2 = state
                .1
                .iter()
                .enumerate()
                .map(|(i, &s)| u64::from(s != (my_range.start + i) as u64))
                .collect();
            for (i, &s) in state.1.iter().enumerate() {
                let g = (my_range.start + i) as u64;
                if s == g {
                    for dst in 0..v {
                        ctx.push(dst, (g, 0, 0));
                    }
                }
            }
            return Status::Continue;
        }

        if ctx.round.is_multiple_of(2) {
            // Reply phase: answer with current (rank, succ).
            let mut replies: Vec<(usize, (u64, u64, u64))> = Vec::new();
            for (_src, items) in ctx.incoming.iter() {
                for &(node, asker, _) in items {
                    let li = node as usize - my_range.start;
                    replies.push((owner(n, v, asker as usize), (asker, state.2[li], state.1[li])));
                }
            }
            for (dst, msg) in replies {
                ctx.push(dst, msg);
            }
            return Status::Continue;
        }

        // Odd round 2k+1: apply replies (k > 0) / record tail (k = 0),
        // then send the next wave of requests.
        let k = ctx.round / 2;
        if k == 0 {
            let tail = ctx
                .incoming
                .iter()
                .flat_map(|(_, items)| items.iter())
                .map(|&(t, _, _)| t)
                .next()
                .expect("list must have a tail");
            if state.0.len() < 2 {
                state.0.push(tail);
            } else {
                state.0[1] = tail;
            }
        } else {
            for (_src, items) in ctx.incoming.iter() {
                for &(asker, add, new_succ) in items {
                    let li = asker as usize - my_range.start;
                    state.2[li] += add;
                    state.1[li] = new_succ;
                }
            }
        }
        if k == iters {
            return Status::Done;
        }
        let tail = state.0[1];
        for (i, &s) in state.1.iter().enumerate() {
            let g = (my_range.start + i) as u64;
            if s != g && s != tail {
                ctx.push(owner(n, v, s as usize), (s, g, 0));
            }
        }
        Status::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgmio_data::{block_split, random_list};
    use cgmio_graph::list_ranks;
    use cgmio_model::{DirectRunner, ThreadedRunner};

    fn init(succ: &[u64], v: usize) -> Vec<ListRankState> {
        block_split(succ.to_vec(), v)
            .into_iter()
            .map(|b| (vec![succ.len() as u64], b, Vec::new()))
            .collect()
    }

    fn collect_ranks(fin: &[ListRankState]) -> Vec<u64> {
        fin.iter().flat_map(|(_, _, r)| r.iter().copied()).collect()
    }

    #[test]
    fn ranks_random_lists() {
        for (n, v, seed) in [(500, 8, 1u64), (1000, 7, 2), (64, 4, 3)] {
            let (succ, _) = random_list(n, seed);
            let want = list_ranks(&succ);
            let (fin, costs) = DirectRunner::default().run(&CgmListRank, init(&succ, v)).unwrap();
            assert_eq!(collect_ranks(&fin), want, "n={n} v={v}");
            assert!(costs.lambda() <= 2 * jump_iters(n) + 2);
        }
    }

    #[test]
    fn all_succ_point_to_tail_after_run() {
        let (succ, _) = random_list(300, 9);
        let tail = (0..300).find(|&x| succ[x] == x as u64).unwrap() as u64;
        let (fin, _) = DirectRunner::default().run(&CgmListRank, init(&succ, 6)).unwrap();
        for (_, s, _) in &fin {
            assert!(s.iter().all(|&x| x == tail));
        }
    }

    #[test]
    fn tiny_lists() {
        let (fin, _) = DirectRunner::default().run(&CgmListRank, init(&[0], 1)).unwrap();
        assert_eq!(collect_ranks(&fin), vec![0]);
        // two nodes: 1 -> 0(tail)
        let (fin, _) = DirectRunner::default().run(&CgmListRank, init(&[0, 0], 2)).unwrap();
        assert_eq!(collect_ranks(&fin), vec![0, 1]);
    }

    #[test]
    fn works_on_threads() {
        let (succ, _) = random_list(400, 4);
        let want = list_ranks(&succ);
        let (fin, _) = ThreadedRunner::new(4).run(&CgmListRank, init(&succ, 8)).unwrap();
        assert_eq!(collect_ranks(&fin), want);
    }

    #[test]
    fn h_relation_is_bounded_by_block_size() {
        // The tail-broadcast optimisation keeps every round an
        // O(n/v)-relation: requests to any non-tail node are unique.
        let (succ, _) = random_list(800, 7);
        let v = 8;
        let (_, costs) = DirectRunner::default().run(&CgmListRank, init(&succ, v)).unwrap();
        assert!(
            costs.max_h() <= 800usize.div_ceil(v) + v + 2,
            "h = {} exceeds the coarse-grained bound",
            costs.max_h()
        );
    }
}
