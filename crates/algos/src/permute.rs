//! Algorithm 4 — *CGMPermute*: perform an arbitrary permutation in one
//! h-relation (`λ = 1`), beating the PDM permutation lower bound in the
//! coarse-grained parameter range (paper Section 3.1).
//!
//! Input convention: processor `i` holds the `i`-th block of the value
//! vector `V` and the corresponding block of the index vector `P`
//! (`P[g]` = destination position of `V[g]`). Output: processor `i`
//! holds the `i`-th block of the permuted vector.

use cgmio_model::{CgmProgram, RoundCtx, Status};

use cgmio_data::block_split_ranges;

/// State: `(values, dest_indices, n_total)` before the exchange; the
/// permuted local block afterwards (with `dest_indices` emptied).
pub type PermuteState = (Vec<u64>, Vec<u64>, u64);

/// The CGM permutation program (messages are `(global_dst_pos, value)`).
#[derive(Debug, Clone, Copy, Default)]
pub struct CgmPermute;

fn owner(n: usize, v: usize, g: usize) -> usize {
    let base = n / v;
    let extra = n % v;
    let boundary = extra * (base + 1);
    if g < boundary {
        g / (base + 1)
    } else {
        extra + (g - boundary) / base.max(1)
    }
}

impl CgmProgram for CgmPermute {
    type Msg = (u64, u64);
    type State = PermuteState;

    fn round(&self, ctx: &mut RoundCtx<'_, (u64, u64)>, state: &mut PermuteState) -> Status {
        let v = ctx.v;
        match ctx.round {
            0 => {
                let n = state.2 as usize;
                debug_assert_eq!(state.0.len(), state.1.len());
                for (&val, &dst) in state.0.iter().zip(&state.1) {
                    ctx.push(owner(n, v, dst as usize), (dst, val));
                }
                state.0.clear();
                state.1.clear();
                Status::Continue
            }
            _ => {
                let n = state.2 as usize;
                let my_range = block_split_ranges(n, v, ctx.pid);
                let mut out = vec![0u64; my_range.len()];
                for (_src, items) in ctx.incoming.iter() {
                    for &(dst, val) in items {
                        out[dst as usize - my_range.start] = val;
                    }
                }
                state.0 = out;
                Status::Done
            }
        }
    }

    fn rounds_hint(&self, _v: usize) -> Option<usize> {
        Some(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgmio_data::{block_split, random_permutation, uniform_u64};
    use cgmio_model::{DirectRunner, ThreadedRunner};

    fn init(vals: &[u64], perm: &[u64], v: usize) -> Vec<PermuteState> {
        let n = vals.len() as u64;
        block_split(vals.to_vec(), v)
            .into_iter()
            .zip(block_split(perm.to_vec(), v))
            .map(|(vb, pb)| (vb, pb, n))
            .collect()
    }

    fn check(fin: &[PermuteState], vals: &[u64], perm: &[u64]) {
        let flat: Vec<u64> = fin.iter().flat_map(|(b, _, _)| b.iter().copied()).collect();
        let mut want = vec![0u64; vals.len()];
        for (i, &p) in perm.iter().enumerate() {
            want[p as usize] = vals[i];
        }
        assert_eq!(flat, want);
    }

    #[test]
    fn permutes_random_input() {
        let n = 3001;
        let v = 7;
        let vals = uniform_u64(n, 1);
        let perm = random_permutation(n, 2);
        let (fin, costs) = DirectRunner::default().run(&CgmPermute, init(&vals, &perm, v)).unwrap();
        check(&fin, &vals, &perm);
        assert_eq!(costs.lambda(), 1, "permutation is a single h-relation");
        assert!(costs.max_h() <= 2 * n / v + 2);
    }

    #[test]
    fn identity_and_reverse() {
        let n = 64;
        let v = 4;
        let vals: Vec<u64> = (100..100 + n as u64).collect();
        let ident: Vec<u64> = (0..n as u64).collect();
        let (fin, _) = DirectRunner::default().run(&CgmPermute, init(&vals, &ident, v)).unwrap();
        check(&fin, &vals, &ident);
        let rev: Vec<u64> = (0..n as u64).rev().collect();
        let (fin, _) = DirectRunner::default().run(&CgmPermute, init(&vals, &rev, v)).unwrap();
        check(&fin, &vals, &rev);
    }

    #[test]
    fn works_on_threads() {
        let n = 1000;
        let v = 8;
        let vals = uniform_u64(n, 5);
        let perm = random_permutation(n, 6);
        let (fin, _) = ThreadedRunner::new(4).run(&CgmPermute, init(&vals, &perm, v)).unwrap();
        check(&fin, &vals, &perm);
    }

    #[test]
    fn uneven_blocks() {
        let n = 10;
        let v = 4; // blocks of 3,3,2,2
        let vals: Vec<u64> = (0..10).collect();
        let perm = random_permutation(n, 3);
        let (fin, _) = DirectRunner::default().run(&CgmPermute, init(&vals, &perm, v)).unwrap();
        check(&fin, &vals, &perm);
        assert_eq!(fin[0].0.len(), 3);
        assert_eq!(fin[3].0.len(), 2);
    }
}
