//! CGM sorting by deterministic regular sampling.
//!
//! The paper simulates Goodrich's deterministic BSP sort \[31\]; we use the
//! classic *sorting by regular sampling* CGM algorithm, which has the
//! same model-level profile — `λ = O(1)` communication rounds,
//! `O(N/v)`-item h-relations, local memory `O(N/v)` — under the same
//! coarseness condition `N/v ≥ v²` (the `κ = 3` of the paper's Figure 5
//! footnote). Simulated through `cgmio-core`, it yields the paper's
//! Group A result: external sorting in `O(N/(pDB))` parallel I/Os.
//!
//! Rounds:
//! 0. sort locally; broadcast `v` regular samples to everyone;
//! 1. everyone identically derives `v−1` pivots from the `v²` samples,
//!    partitions its sorted run and routes partition `j` to processor
//!    `j`, alongside the partition-size row (for the optional
//!    rebalancing round);
//! 2. merge received runs — done if `rebalance` is off; otherwise route
//!    items so the output is exactly block-distributed;
//! 3. concatenate (runs arrive in ascending global order).

use cgmio_model::{CgmProgram, ProcState, RoundCtx, Status};
use cgmio_pdm::Item;

/// Keys a [`CgmSort`] can sort: any totally ordered fixed-size item.
pub trait SortKey: Item + Ord {}
impl<T: Item + Ord> SortKey for T {}

/// Wire format: keys and bookkeeping counts share one fixed-size frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortMsg<K> {
    /// A sample or data key.
    Key(K),
    /// A partition-size announcement `(src_row_dst, len)` used by the
    /// rebalancing round.
    Count(u32, u64),
}

impl<K: Item> Item for SortMsg<K> {
    const SIZE: usize = 1 + if K::SIZE > 12 { K::SIZE } else { 12 };

    fn write_to(&self, buf: &mut [u8]) {
        match self {
            SortMsg::Key(k) => {
                buf[0] = 0;
                k.write_to(&mut buf[1..1 + K::SIZE]);
            }
            SortMsg::Count(dst, len) => {
                buf[0] = 1;
                buf[1..5].copy_from_slice(&dst.to_le_bytes());
                buf[5..13].copy_from_slice(&len.to_le_bytes());
            }
        }
    }

    fn read_from(buf: &[u8]) -> Self {
        match buf[0] {
            0 => SortMsg::Key(K::read_from(&buf[1..1 + K::SIZE])),
            _ => SortMsg::Count(
                u32::from_le_bytes(buf[1..5].try_into().unwrap()),
                u64::from_le_bytes(buf[5..13].try_into().unwrap()),
            ),
        }
    }
}

/// Per-processor sort state: the local fragment (kept sorted from round
/// 0 on) plus the partition-size matrix gathered for rebalancing.
pub type SortState<K> = (Vec<K>, Vec<u64>);

/// Deterministic CGM sample sort over keys of type `K`.
#[derive(Debug, Clone, Copy)]
pub struct CgmSort<K> {
    /// When true, two extra rounds redistribute the output into the
    /// exact block distribution (sizes differing by ≤ 1); when false the
    /// output is distributed by pivot ranges (sizes `O(N/v)`).
    pub rebalance: bool,
    _key: std::marker::PhantomData<fn() -> K>,
}

impl<K> CgmSort<K> {
    /// Sort leaving the output distributed by pivots.
    pub fn by_pivots() -> Self {
        Self { rebalance: false, _key: std::marker::PhantomData }
    }

    /// Sort producing an exactly block-distributed output.
    pub fn block_distributed() -> Self {
        Self { rebalance: true, _key: std::marker::PhantomData }
    }
}

impl<K> Default for CgmSort<K> {
    fn default() -> Self {
        Self::by_pivots()
    }
}

fn regular_samples<K: SortKey>(sorted: &[K], v: usize) -> impl Iterator<Item = K> + '_ {
    // v samples at positions ⌊k·len/v⌋; duplicates are fine.
    (0..v).filter_map(move |k| sorted.get(k * sorted.len() / v).copied())
}

impl<K: SortKey> CgmProgram for CgmSort<K>
where
    Vec<K>: ProcState,
{
    type Msg = SortMsg<K>;
    type State = SortState<K>;

    fn round(&self, ctx: &mut RoundCtx<'_, SortMsg<K>>, state: &mut SortState<K>) -> Status {
        let v = ctx.v;
        match ctx.round {
            0 => {
                state.0.sort_unstable();
                for dst in 0..v {
                    ctx.send(dst, regular_samples(&state.0, v).map(SortMsg::Key));
                }
                Status::Continue
            }
            1 => {
                // Derive pivots identically everywhere.
                let mut samples: Vec<K> = ctx
                    .incoming
                    .flatten()
                    .into_iter()
                    .map(|m| match m {
                        SortMsg::Key(k) => k,
                        SortMsg::Count(..) => unreachable!("round 1 carries only samples"),
                    })
                    .collect();
                samples.sort_unstable();
                let pivots: Vec<K> =
                    (1..v).filter_map(|k| samples.get(k * samples.len() / v).copied()).collect();

                // Partition the sorted local run and route.
                let mut sizes = vec![0u64; v];
                let mut start = 0usize;
                for dst in 0..v {
                    let end = if dst < pivots.len() {
                        start + state.0[start..].partition_point(|x| *x <= pivots[dst])
                    } else {
                        state.0.len()
                    };
                    sizes[dst] = (end - start) as u64;
                    ctx.send(dst, state.0[start..end].iter().copied().map(SortMsg::Key));
                    start = end;
                }
                if self.rebalance {
                    // Announce this row of the partition matrix to all.
                    for t in 0..v {
                        ctx.send(
                            t,
                            sizes.iter().enumerate().map(|(d, &s)| SortMsg::Count(d as u32, s)),
                        );
                    }
                }
                state.0.clear();
                Status::Continue
            }
            2 => {
                let mut recv_counts = vec![0u64; v]; // items per destination, all rows summed
                let mut mine: Vec<K> = Vec::new();
                for (_src, items) in ctx.incoming.iter() {
                    for m in items {
                        match *m {
                            SortMsg::Key(k) => mine.push(k),
                            SortMsg::Count(dst, len) => recv_counts[dst as usize] += len,
                        }
                    }
                }
                mine.sort_unstable();
                state.0 = mine;
                if !self.rebalance {
                    return Status::Done;
                }

                // Global rank of my first item = Σ_{j<pid} recv_counts[j].
                let my_start: u64 = recv_counts[..ctx.pid].iter().sum();
                let n: u64 = recv_counts.iter().sum();
                state.1 = recv_counts;
                // Route each item to the owner of its global rank under
                // the block distribution.
                let base = (n / v as u64) as usize;
                let extra = (n % v as u64) as usize;
                let owner = |g: u64| -> usize {
                    let g = g as usize;
                    let boundary = extra * (base + 1);
                    if g < boundary {
                        g / (base + 1)
                    } else {
                        extra + (g - boundary) / base.max(1)
                    }
                };
                for (off, &k) in state.0.iter().enumerate() {
                    ctx.push(owner(my_start + off as u64), SortMsg::Key(k));
                }
                state.0.clear();
                Status::Continue
            }
            _ => {
                // Runs arrive in ascending source order = ascending
                // global rank, so concatenation is sorted.
                let mut out = Vec::new();
                for (_src, items) in ctx.incoming.iter() {
                    for m in items {
                        match *m {
                            SortMsg::Key(k) => out.push(k),
                            SortMsg::Count(..) => unreachable!("round 3 carries only keys"),
                        }
                    }
                }
                debug_assert!(out.windows(2).all(|w| w[0] <= w[1]));
                state.0 = out;
                state.1.clear();
                Status::Done
            }
        }
    }

    fn rounds_hint(&self, _v: usize) -> Option<usize> {
        Some(if self.rebalance { 4 } else { 3 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgmio_data::{block_split, few_distinct_u64, reverse_sorted_u64, uniform_u64};
    use cgmio_model::{DirectRunner, ThreadedRunner};

    fn init_states(keys: &[u64], v: usize) -> Vec<SortState<u64>> {
        block_split(keys.to_vec(), v).into_iter().map(|b| (b, Vec::new())).collect()
    }

    fn check_sorted_output(states: &[SortState<u64>], input: &[u64]) {
        let flat: Vec<u64> = states.iter().flat_map(|(b, _)| b.iter().copied()).collect();
        let mut want = input.to_vec();
        want.sort_unstable();
        assert_eq!(flat, want);
    }

    #[test]
    fn sorts_uniform_keys() {
        let keys = uniform_u64(5000, 42);
        let v = 8;
        let (fin, costs) =
            DirectRunner::default().run(&CgmSort::by_pivots(), init_states(&keys, v)).unwrap();
        check_sorted_output(&fin, &keys);
        assert_eq!(costs.lambda(), 2, "two communication rounds without rebalance");
    }

    #[test]
    fn sorts_with_rebalance_into_blocks() {
        let keys = uniform_u64(4103, 7); // deliberately not divisible by v
        let v = 8;
        let (fin, costs) = DirectRunner::default()
            .run(&CgmSort::block_distributed(), init_states(&keys, v))
            .unwrap();
        check_sorted_output(&fin, &keys);
        assert_eq!(costs.lambda(), 3);
        // block distribution: sizes differ by at most one
        let sizes: Vec<usize> = fin.iter().map(|(b, _)| b.len()).collect();
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        assert!(max - min <= 1, "sizes = {sizes:?}");
    }

    #[test]
    fn sorts_adversarial_inputs() {
        let v = 6;
        for keys in [
            reverse_sorted_u64(3000),
            few_distinct_u64(3000, 3, 1),
            vec![5u64; 1000],
            (0..1000u64).collect(),
            vec![],
            vec![9],
        ] {
            let (fin, _) = DirectRunner::default()
                .run(&CgmSort::block_distributed(), init_states(&keys, v))
                .unwrap();
            check_sorted_output(&fin, &keys);
        }
    }

    #[test]
    fn sample_sort_h_relation_is_coarse() {
        // With N/v >= v^2, the max h stays O(N/v): check h <= 3N/v + v^2.
        let n = 8192;
        let v = 8; // N/v = 1024 = v^2 * 16
        let keys = uniform_u64(n, 3);
        let (_, costs) =
            DirectRunner::default().run(&CgmSort::by_pivots(), init_states(&keys, v)).unwrap();
        let bound = 3 * n / v + v * v;
        assert!(costs.max_h() <= bound, "h = {} bound = {bound}", costs.max_h());
    }

    #[test]
    fn works_on_threads() {
        let keys = uniform_u64(2000, 11);
        let v = 6;
        let (fin, _) = ThreadedRunner::new(3)
            .run(&CgmSort::block_distributed(), init_states(&keys, v))
            .unwrap();
        check_sorted_output(&fin, &keys);
    }

    #[test]
    fn pair_keys_sort_lexicographically() {
        let v = 4;
        let pairs: Vec<(u64, u64)> = uniform_u64(600, 5).into_iter().map(|k| (k % 10, k)).collect();
        let states: Vec<SortState<(u64, u64)>> =
            block_split(pairs.clone(), v).into_iter().map(|b| (b, Vec::new())).collect();
        let (fin, _) = DirectRunner::default().run(&CgmSort::by_pivots(), states).unwrap();
        let flat: Vec<(u64, u64)> = fin.iter().flat_map(|(b, _)| b.iter().copied()).collect();
        let mut want = pairs;
        want.sort_unstable();
        assert_eq!(flat, want);
    }

    #[test]
    fn sortmsg_roundtrip() {
        let mut buf = vec![0u8; SortMsg::<u64>::SIZE];
        SortMsg::Key(0xABCDu64).write_to(&mut buf);
        assert_eq!(SortMsg::<u64>::read_from(&buf), SortMsg::Key(0xABCD));
        SortMsg::<u64>::Count(7, 99).write_to(&mut buf);
        assert_eq!(SortMsg::<u64>::read_from(&buf), SortMsg::Count(7, 99));
        // wide keys widen the frame
        assert_eq!(SortMsg::<(u64, u64, u64)>::SIZE, 25);
        assert_eq!(SortMsg::<u64>::SIZE, 13);
    }
}
