//! CGM triangulation of a planar point set (Figure 5 Group B row 1).
//!
//! Each slab triangulates its own points with the exact sequential
//! sweep; a `⌈log₂ v⌉`-round combining tree then merges adjacent slab
//! groups: only the *hulls* travel, and the receiver triangulates the
//! pocket between the two x-separated hulls (common tangents + ear
//! clipping with exact predicates), so the merge traffic is
//! `O(hull sizes)`, not `O(N)`. Triangles stay distributed; the final
//! triangulation is their union.
//!
//! For point sets in general position the union is a proper
//! triangulation of the convex hull; collinear runs along slab hulls can
//! produce T-junction seams (still a valid tiling by area), which the
//! tests verify by exact area accounting.

use cgmio_geom::{convex_hull, orient2d, Point};
use cgmio_model::{CgmProgram, RoundCtx, Status};

use super::super::graphs::jump_iters;
use super::slab::{choose_splitters, local_samples, slab_of};

/// An identified point on the wire.
pub type IdPoint = (u64, (i64, i64));

/// State: `((points, hull), triangles as [id; 3])`.
pub type TriangulateState = ((Vec<IdPoint>, Vec<IdPoint>), Vec<[u64; 3]>);

/// The slab + hull-merge triangulation program.
#[derive(Debug, Clone, Copy, Default)]
pub struct CgmTriangulate;

/// Common upper/lower tangent between two x-separated hulls: returns
/// indices `(ia, ib)` into `a` and `b`. `upper = true` finds the tangent
/// with all points on or below; tie points on the tangent line resolve
/// to the innermost pair (rightmost in `a`, leftmost in `b`) so the
/// pocket polygon is tight.
fn tangent(a: &[IdPoint], b: &[IdPoint], upper: bool) -> (usize, usize) {
    let below = |p: Point, q: Point, r: Point| {
        let o = orient2d(p, q, r);
        if upper {
            o <= 0
        } else {
            o >= 0
        }
    };
    let mut best: Option<(usize, usize)> = None;
    for (i, &(_, pa)) in a.iter().enumerate() {
        'cand: for (j, &(_, pb)) in b.iter().enumerate() {
            for &(_, c) in a.iter().chain(b.iter()) {
                if c != pa && c != pb && !below(pa, pb, c) {
                    continue 'cand;
                }
            }
            best = Some(match best {
                None => (i, j),
                Some((bi, bj)) => {
                    // innermost: a-side max x, b-side min x
                    let ai = if (a[i].1 .0, a[i].1 .1) > (a[bi].1 .0, a[bi].1 .1) { i } else { bi };
                    let bjn =
                        if (b[j].1 .0, b[j].1 .1) < (b[bj].1 .0, b[bj].1 .1) { j } else { bj };
                    (ai, bjn)
                }
            });
        }
    }
    best.expect("x-separated non-empty hulls always have a tangent")
}

/// Ear-clip a simple (possibly degenerate) ccw polygon with exact
/// predicates; collinear vertices are dropped without emitting.
fn ear_clip(mut poly: Vec<IdPoint>, out: &mut Vec<[u64; 3]>) {
    'outer: while poly.len() >= 3 {
        let n = poly.len();
        for i in 0..n {
            let (pa, pb, pc) = (poly[(i + n - 1) % n], poly[i], poly[(i + 1) % n]);
            let o = orient2d(pa.1, pb.1, pc.1);
            if o <= 0 {
                continue;
            }
            // blocked if any other vertex is inside or on the two ear
            // edges (being on the chord pa–pc is fine)
            let mut blocked = false;
            for &(_, p) in &poly {
                if p == pa.1 || p == pb.1 || p == pc.1 {
                    continue;
                }
                let o1 = orient2d(pa.1, pb.1, p);
                let o2 = orient2d(pb.1, pc.1, p);
                let o3 = orient2d(pc.1, pa.1, p);
                if o1 >= 0 && o2 >= 0 && o3 > 0 {
                    blocked = true;
                    break;
                }
            }
            if !blocked {
                out.push([pa.0, pb.0, pc.0]);
                poly.remove(i);
                continue 'outer;
            }
        }
        // no positive ear: drop a collinear vertex if one exists
        for i in 0..n {
            let (pa, pb, pc) = (poly[(i + n - 1) % n], poly[i], poly[(i + 1) % n]);
            if orient2d(pa.1, pb.1, pc.1) == 0 {
                poly.remove(i);
                continue 'outer;
            }
        }
        return; // degenerate leftover (zero-area pocket)
    }
}

/// Triangulate the pocket between x-separated hulls `a` (left) and `b`
/// (right), both ccw; returns the merged hull.
fn merge_hulls(a: &[IdPoint], b: &[IdPoint], out: &mut Vec<[u64; 3]>) -> Vec<IdPoint> {
    if a.is_empty() {
        return b.to_vec();
    }
    if b.is_empty() {
        return a.to_vec();
    }
    let (au, bu) = tangent(a, b, true);
    let (al, bl) = tangent(a, b, false);
    // pocket polygon (cw): a_l → ccw chain → a_u, then b_u → ccw chain → b_l
    let mut poly: Vec<IdPoint> = Vec::new();
    let mut i = al;
    loop {
        poly.push(a[i]);
        if i == au {
            break;
        }
        i = (i + 1) % a.len();
    }
    let mut j = bu;
    loop {
        poly.push(b[j]);
        if j == bl {
            break;
        }
        j = (j + 1) % b.len();
    }
    poly.reverse(); // ccw
    if poly.len() >= 3 {
        ear_clip(poly, out);
    }

    // merged hull via the exact hull of the two hulls' points
    let pts: Vec<Point> = a.iter().chain(b.iter()).map(|&(_, p)| p).collect();
    let id_of: std::collections::HashMap<Point, u64> =
        a.iter().chain(b.iter()).map(|&(id, p)| (p, id)).collect();
    convex_hull(&pts).into_iter().map(|p| (id_of[&p], p)).collect()
}

impl CgmProgram for CgmTriangulate {
    /// `(tag, id, (x, y))`: tag 0 = sample, 1 = routed point, 2 = hull
    /// point (in ccw order).
    type Msg = (u64, u64, (i64, i64));
    type State = TriangulateState;

    fn round(&self, ctx: &mut RoundCtx<'_, Self::Msg>, state: &mut TriangulateState) -> Status {
        let v = ctx.v;
        let levels = jump_iters(v);
        match ctx.round {
            0 => {
                let xs: Vec<i64> = state.0 .0.iter().map(|p| p.1 .0).collect();
                for dst in 0..v {
                    ctx.send(dst, local_samples(&xs, v).into_iter().map(|x| (0, 0, (x, 0))));
                }
                Status::Continue
            }
            1 => {
                let samples: Vec<i64> =
                    ctx.incoming.flatten().into_iter().map(|(_, _, (x, _))| x).collect();
                let splitters = choose_splitters(samples, v);
                for &(id, p) in &state.0 .0 {
                    ctx.push(slab_of(&splitters, p.0), (1, id, p));
                }
                state.0 .0.clear();
                Status::Continue
            }
            r => {
                if r == 2 {
                    // local triangulation + local hull
                    let slab: Vec<IdPoint> =
                        ctx.incoming.flatten().into_iter().map(|(_, id, p)| (id, p)).collect();
                    let coords: Vec<Point> = slab.iter().map(|&(_, p)| p).collect();
                    state.1 = cgmio_geom::triangulate_points(&coords)
                        .into_iter()
                        .map(|(a, b, c)| {
                            [slab[a as usize].0, slab[b as usize].0, slab[c as usize].0]
                        })
                        .collect();
                    let id_of: std::collections::HashMap<Point, u64> =
                        slab.iter().map(|&(id, p)| (p, id)).collect();
                    state.0 .1 = convex_hull(&coords).into_iter().map(|p| (id_of[&p], p)).collect();
                } else {
                    // merge an arriving hull (we are left of the sender)
                    let arrived: Vec<IdPoint> =
                        ctx.incoming.flatten().into_iter().map(|(_, id, p)| (id, p)).collect();
                    if !arrived.is_empty() {
                        let mine = std::mem::take(&mut state.0 .1);
                        state.0 .1 = merge_hulls(&mine, &arrived, &mut state.1);
                    }
                }
                let k = r - 2;
                if k == levels {
                    return Status::Done;
                }
                if ctx.pid & (1 << k) != 0 && ctx.pid % (1 << k) == 0 {
                    let partner = ctx.pid - (1 << k);
                    let hull = std::mem::take(&mut state.0 .1);
                    ctx.send(partner, hull.into_iter().map(|(id, p)| (2, id, p)));
                }
                Status::Continue
            }
        }
    }

    fn rounds_hint(&self, v: usize) -> Option<usize> {
        Some(jump_iters(v) + 3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgmio_data::{block_split, random_points};
    use cgmio_model::{DirectRunner, ThreadedRunner};

    fn init(pts: &[Point], v: usize) -> Vec<TriangulateState> {
        let indexed: Vec<IdPoint> =
            pts.iter().copied().enumerate().map(|(i, p)| (i as u64, p)).collect();
        block_split(indexed, v).into_iter().map(|b| ((b, Vec::new()), Vec::new())).collect()
    }

    fn all_triangles(fin: &[TriangulateState]) -> Vec<[u64; 3]> {
        fin.iter().flat_map(|(_, t)| t.iter().copied()).collect()
    }

    fn hull_doubled_area(pts: &[Point]) -> i128 {
        let hull = convex_hull(pts);
        let mut s = 0i128;
        for i in 1..hull.len().saturating_sub(1) {
            s += orient2d(hull[0], hull[i], hull[i + 1]);
        }
        s
    }

    fn validate(pts: &[Point], tris: &[[u64; 3]]) {
        let mut area = 0i128;
        let mut edge_count = std::collections::HashMap::new();
        for &[a, b, c] in tris {
            let o = orient2d(pts[a as usize], pts[b as usize], pts[c as usize]);
            assert!(o > 0, "triangle must be ccw and non-degenerate");
            area += o;
            for (u, w) in [(a, b), (b, c), (c, a)] {
                *edge_count.entry((u.min(w), u.max(w))).or_insert(0u32) += 1;
            }
        }
        assert_eq!(area, hull_doubled_area(pts), "triangles must tile the hull exactly");
        assert!(edge_count.values().all(|&c| c <= 2), "edge used more than twice");
    }

    #[test]
    fn tiles_hull_on_random_inputs() {
        for seed in 0..5u64 {
            let pts = random_points(400, 5_000, seed);
            for v in [2usize, 4, 6, 8] {
                let (fin, _) = DirectRunner::default().run(&CgmTriangulate, init(&pts, v)).unwrap();
                validate(&pts, &all_triangles(&fin));
            }
        }
    }

    #[test]
    fn single_processor_matches_sequential_shape() {
        let pts = random_points(100, 1_000, 9);
        let (fin, _) = DirectRunner::default().run(&CgmTriangulate, init(&pts, 1)).unwrap();
        validate(&pts, &all_triangles(&fin));
    }

    #[test]
    fn tiny_inputs() {
        let pts = vec![(0, 0), (10, 0), (0, 10)];
        let (fin, _) = DirectRunner::default().run(&CgmTriangulate, init(&pts, 4)).unwrap();
        let tris = all_triangles(&fin);
        assert_eq!(tris.len(), 1);
        validate(&pts, &tris);

        let pts = vec![(0, 0), (10, 0)];
        let (fin, _) = DirectRunner::default().run(&CgmTriangulate, init(&pts, 4)).unwrap();
        assert!(all_triangles(&fin).is_empty());
    }

    #[test]
    fn works_on_threads() {
        let pts = random_points(300, 4_000, 3);
        let (fin, _) = ThreadedRunner::new(4).run(&CgmTriangulate, init(&pts, 8)).unwrap();
        validate(&pts, &all_triangles(&fin));
    }
}
