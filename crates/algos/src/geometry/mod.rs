//! Geometry / GIS CGM algorithms (the paper's Figure 5 Group B).
//!
//! The programs share one structural idea: a sampling round establishes
//! `x`-splitters, data is routed into `v` vertical slabs, each processor
//! solves its slab with the exact sequential substrate from
//! `cgmio-geom`, and a constant number of exchange rounds stitches the
//! slab answers together. All predicates are exact (`i64`/`i128`), so
//! every program is validated for *equality* against its sequential
//! reference.
//!
//! Coarseness caveats are documented per program: e.g. hull/maxima
//! candidate gathers are `O(output)`-sized (tiny for random inputs,
//! up to `O(N)` adversarially), and segments/rectangles are duplicated
//! into each slab they overlap — the same assumptions the cited CGM
//! algorithms make via `N/v ≥ v^ε` slackness.

pub mod dominance;
pub mod envelope;
pub mod hull;
pub mod maxima;
pub mod nn;
pub mod pointloc;
pub mod rects;
pub mod slab;
pub mod stab;
pub mod triangulate;

pub use dominance::{CgmDominance, DominanceState};
pub use envelope::{CgmLowerEnvelope, EnvelopeState};
pub use hull::{CgmConvexHull, CgmSeparability, HullState, SeparabilityState};
pub use maxima::{CgmMaxima3d, MaximaState};
pub use nn::{CgmAllNearestNeighbors, NnState};
pub use pointloc::{CgmPointLocation, PointLocState};
pub use rects::{CgmUnionArea, UnionAreaState};
pub use stab::{CgmIntervalStab, StabState};
pub use triangulate::{CgmTriangulate, TriangulateState};
