//! CGM 2D convex hull and multi-directional separability
//! (Figure 5 Group B rows 3 and 7).
//!
//! Hull: sample → slab-partition by `x` → local hull per slab →
//! all-gather the slab hulls (the global hull's vertices are a subset)
//! → identical final hull computed everywhere. `λ = 3`. The gather is
//! `O(Σ slab-hull sizes)` — `O(v·√N)` expected for random inputs,
//! `O(N)` adversarially (circle); the cited CGM algorithms assume the
//! same slackness.
//!
//! Separability: each processor holds points of two sets `A` and `B`;
//! one round gathers per-direction projection extrema (`O(k·v)` items
//! for `k` directions), after which every processor knows, for each
//! direction `d`, whether `A` can be translated to infinity along `d`
//! without meeting `B` (projection test on the hulls).

use cgmio_geom::{convex_hull, Point};
use cgmio_model::{CgmProgram, RoundCtx, Status};

use super::slab::{choose_splitters, local_samples, slab_of};

/// State: `(points, hull_out)` — after the run every processor holds the
/// full hull in ccw order.
pub type HullState = (Vec<Point>, Vec<Point>);

/// The slab-based CGM convex hull.
#[derive(Debug, Clone, Copy, Default)]
pub struct CgmConvexHull;

impl CgmProgram for CgmConvexHull {
    type Msg = (i64, i64);
    type State = HullState;

    fn round(&self, ctx: &mut RoundCtx<'_, (i64, i64)>, state: &mut HullState) -> Status {
        let v = ctx.v;
        match ctx.round {
            0 => {
                let xs: Vec<i64> = state.0.iter().map(|p| p.0).collect();
                for dst in 0..v {
                    ctx.send(dst, local_samples(&xs, v).into_iter().map(|x| (x, 0)));
                }
                Status::Continue
            }
            1 => {
                let samples: Vec<i64> =
                    ctx.incoming.flatten().into_iter().map(|(x, _)| x).collect();
                let splitters = choose_splitters(samples, v);
                for &p in &state.0 {
                    ctx.push(slab_of(&splitters, p.0), p);
                }
                state.0.clear();
                Status::Continue
            }
            2 => {
                let slab_points = ctx.incoming.flatten();
                let local_hull = convex_hull(&slab_points);
                for dst in 0..v {
                    ctx.send(dst, local_hull.iter().copied());
                }
                Status::Continue
            }
            _ => {
                let candidates = ctx.incoming.flatten();
                state.1 = convex_hull(&candidates);
                Status::Done
            }
        }
    }

    fn rounds_hint(&self, _v: usize) -> Option<usize> {
        Some(4)
    }
}

/// State: `((points_a, points_b), (directions, separable_flags))`.
/// `separable_flags[k] = 1` iff `A` is separable from `B` along
/// `directions[k]`.
pub type SeparabilityState = ((Vec<Point>, Vec<Point>), (Vec<Point>, Vec<u64>));

/// Uni-/multi-directional separability of two point sets.
#[derive(Debug, Clone, Copy, Default)]
pub struct CgmSeparability;

impl CgmProgram for CgmSeparability {
    /// `(direction_index, which_set, projection)` extrema.
    type Msg = (u64, u64, i64);
    type State = SeparabilityState;

    fn round(
        &self,
        ctx: &mut RoundCtx<'_, (u64, u64, i64)>,
        state: &mut SeparabilityState,
    ) -> Status {
        let v = ctx.v;
        let dirs = state.1 .0.clone();
        match ctx.round {
            0 => {
                // Broadcast per-direction local extrema: max⟨a,d⟩ over A,
                // min⟨b,d⟩ over B. Missing sets are skipped.
                for (k, &d) in dirs.iter().enumerate() {
                    let proj =
                        |p: Point| (p.0 as i128 * d.0 as i128 + p.1 as i128 * d.1 as i128) as i64;
                    if let Some(amax) = state.0 .0.iter().copied().map(proj).max() {
                        for dst in 0..v {
                            ctx.push(dst, (k as u64, 0, amax));
                        }
                    }
                    if let Some(bmin) = state.0 .1.iter().copied().map(proj).min() {
                        for dst in 0..v {
                            ctx.push(dst, (k as u64, 1, bmin));
                        }
                    }
                }
                Status::Continue
            }
            _ => {
                let mut amax = vec![i64::MIN; dirs.len()];
                let mut bmin = vec![i64::MAX; dirs.len()];
                for (_src, items) in ctx.incoming.iter() {
                    for &(k, which, val) in items {
                        if which == 0 {
                            amax[k as usize] = amax[k as usize].max(val);
                        } else {
                            bmin[k as usize] = bmin[k as usize].min(val);
                        }
                    }
                }
                state.1 .1 = (0..dirs.len()).map(|k| u64::from(amax[k] < bmin[k])).collect();
                Status::Done
            }
        }
    }

    fn rounds_hint(&self, _v: usize) -> Option<usize> {
        Some(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgmio_data::{block_split, random_points};
    use cgmio_geom::hull_separable_in_direction;
    use cgmio_model::{DirectRunner, ThreadedRunner};

    fn init_hull(pts: &[Point], v: usize) -> Vec<HullState> {
        block_split(pts.to_vec(), v).into_iter().map(|b| (b, Vec::new())).collect()
    }

    #[test]
    fn matches_sequential_hull() {
        for seed in 0..4u64 {
            let pts = random_points(800, 10_000, seed);
            let want = convex_hull(&pts);
            let (fin, costs) =
                DirectRunner::default().run(&CgmConvexHull, init_hull(&pts, 6)).unwrap();
            for (_, hull) in &fin {
                assert_eq!(hull, &want, "seed {seed}");
            }
            assert_eq!(costs.lambda(), 3);
        }
    }

    #[test]
    fn circle_points_all_on_hull() {
        // worst case for the gather: every point is a hull vertex
        let n = 120i64;
        let pts: Vec<Point> = (0..n)
            .map(|i| {
                let a = i as f64 / n as f64 * std::f64::consts::TAU;
                ((10_000.0 * a.cos()) as i64, (10_000.0 * a.sin()) as i64)
            })
            .collect();
        let want = convex_hull(&pts);
        let (fin, _) = DirectRunner::default().run(&CgmConvexHull, init_hull(&pts, 5)).unwrap();
        assert_eq!(fin[0].1, want);
    }

    #[test]
    fn degenerate_inputs() {
        // collinear
        let pts: Vec<Point> = (0..50).map(|i| (i, 2 * i)).collect();
        let (fin, _) = DirectRunner::default().run(&CgmConvexHull, init_hull(&pts, 4)).unwrap();
        assert_eq!(fin[0].1, convex_hull(&pts));
        // fewer points than processors
        let pts = vec![(3, 4), (1, 2)];
        let (fin, _) = DirectRunner::default().run(&CgmConvexHull, init_hull(&pts, 4)).unwrap();
        assert_eq!(fin[0].1, convex_hull(&pts));
    }

    #[test]
    fn hull_works_on_threads() {
        let pts = random_points(500, 5_000, 9);
        let want = convex_hull(&pts);
        let (fin, _) = ThreadedRunner::new(3).run(&CgmConvexHull, init_hull(&pts, 6)).unwrap();
        assert_eq!(fin[3].1, want);
    }

    fn init_sep(a: &[Point], b: &[Point], dirs: &[Point], v: usize) -> Vec<SeparabilityState> {
        block_split(a.to_vec(), v)
            .into_iter()
            .zip(block_split(b.to_vec(), v))
            .map(|(ab, bb)| ((ab, bb), (dirs.to_vec(), Vec::new())))
            .collect()
    }

    #[test]
    fn separability_matches_reference() {
        let a = random_points(300, 1000, 1);
        let b: Vec<Point> =
            random_points(300, 1000, 2).into_iter().map(|(x, y)| (x + 2000, y)).collect();
        let dirs = vec![(1, 0), (-1, 0), (0, 1), (1, 1), (-3, 2)];
        let (fin, costs) =
            DirectRunner::default().run(&CgmSeparability, init_sep(&a, &b, &dirs, 5)).unwrap();
        for (k, &d) in dirs.iter().enumerate() {
            let want = hull_separable_in_direction(&a, &b, d);
            for s in &fin {
                assert_eq!(s.1 .1[k] == 1, want, "dir {d:?}");
            }
        }
        assert_eq!(costs.lambda(), 1);
    }

    #[test]
    fn overlapping_sets_never_separable() {
        let a = random_points(100, 500, 3);
        let b = random_points(100, 500, 4);
        let dirs = vec![(1, 0), (0, 1), (-1, -1)];
        let (fin, _) =
            DirectRunner::default().run(&CgmSeparability, init_sep(&a, &b, &dirs, 4)).unwrap();
        for (k, &d) in dirs.iter().enumerate() {
            assert_eq!(fin[0].1 .1[k] == 1, hull_separable_in_direction(&a, &b, d));
        }
    }
}
