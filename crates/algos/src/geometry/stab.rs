//! CGM distributed segment (interval) tree with batched weighted
//! stabbing queries (Figure 5 Group B rows 1–2: "segment tree
//! construction" and the 1D core of batched point location).
//!
//! Endpoints are sampled into `v` slabs. An interval is stored locally
//! at the (at most two) slabs containing its endpoints; the slabs it
//! *fully spans* are covered by a `v`-sized delta vector that is
//! all-reduced, so spanning mass never needs per-slab copies — the
//! classic distributed segment-tree trick, `λ = 3`, all h-relations
//! `O(N/v + v)`.

use cgmio_geom::IntervalTree;
use cgmio_model::{CgmProgram, RoundCtx, Status};

use super::slab::{choose_splitters, local_samples, slab_of};

/// State: `((intervals as (a, b, w), queries as (qid, x)), answers as
/// (qid, total_weight))`.
pub type StabState = ((Vec<[i64; 3]>, Vec<(u64, i64)>), Vec<(u64, i64)>);

/// The distributed interval-stabbing program.
#[derive(Debug, Clone, Copy, Default)]
pub struct CgmIntervalStab;

impl CgmProgram for CgmIntervalStab {
    /// `(tag, a, [b, c])`: tag 0 = sample (a = x); 1 = interval
    /// `(a, b, w)`; 2 = spanning delta (slab = a, w = b); 3 = query
    /// `(qid = a, x = b)`.
    type Msg = (u64, i64, [i64; 2]);
    type State = StabState;

    fn round(&self, ctx: &mut RoundCtx<'_, Self::Msg>, state: &mut StabState) -> Status {
        let v = ctx.v;
        match ctx.round {
            0 => {
                let xs: Vec<i64> = state
                    .0
                     .0
                    .iter()
                    .flat_map(|iv| [iv[0], iv[1]])
                    .chain(state.0 .1.iter().map(|q| q.1))
                    .collect();
                for dst in 0..v {
                    ctx.send(dst, local_samples(&xs, v).into_iter().map(|x| (0, x, [0, 0])));
                }
                Status::Continue
            }
            1 => {
                let samples: Vec<i64> =
                    ctx.incoming.flatten().into_iter().map(|(_, x, _)| x).collect();
                let splitters = choose_splitters(samples, v);
                for &[a, b, w] in &state.0 .0 {
                    let (sa, sb) = (slab_of(&splitters, a), slab_of(&splitters, b));
                    ctx.push(sa, (1, a, [b, w]));
                    if sb != sa {
                        ctx.push(sb, (1, a, [b, w]));
                    }
                    // spanning deltas: slabs strictly between sa and sb
                    if sb > sa + 1 {
                        for dst in 0..v {
                            ctx.push(dst, (2, (sa + 1) as i64, [w, 0]));
                            ctx.push(dst, (2, sb as i64, [-w, 0]));
                        }
                    }
                }
                for &(qid, x) in &state.0 .1 {
                    ctx.push(slab_of(&splitters, x), (3, qid as i64, [x, 0]));
                }
                state.0 .0.clear();
                state.0 .1.clear();
                Status::Continue
            }
            _ => {
                // Assemble the local tree, the spanning prefix, and
                // answer local queries.
                let mut local: Vec<(i64, i64, i64)> = Vec::new();
                let mut deltas = vec![0i64; v + 1];
                let mut queries: Vec<(u64, i64)> = Vec::new();
                for (_src, items) in ctx.incoming.iter() {
                    for &(tag, a, [b, c]) in items {
                        match tag {
                            1 => local.push((a, b, c)),
                            2 => deltas[a as usize] += b,
                            3 => queries.push((a as u64, b)),
                            _ => unreachable!(),
                        }
                    }
                }
                // each interval reaches a slab at most once (the sa/sb
                // pushes target distinct slabs), so no dedup is needed —
                // identical intervals from different sources must all
                // count.
                local.sort_unstable();
                let spanning: i64 = deltas[..=ctx.pid].iter().sum();
                let tree =
                    IntervalTree::build(&local.iter().map(|&(a, b, _)| (a, b)).collect::<Vec<_>>());
                state.1 = queries
                    .into_iter()
                    .map(|(qid, x)| {
                        let local_sum: i64 =
                            tree.stab(x).into_iter().map(|i| local[i as usize].2).sum();
                        (qid, local_sum + spanning)
                    })
                    .collect();
                state.1.sort_unstable();
                Status::Done
            }
        }
    }

    fn rounds_hint(&self, _v: usize) -> Option<usize> {
        Some(3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgmio_data::block_split;
    use cgmio_model::{DirectRunner, ThreadedRunner};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn naive(intervals: &[[i64; 3]], x: i64) -> i64 {
        intervals.iter().filter(|iv| iv[0] <= x && x <= iv[1]).map(|iv| iv[2]).sum()
    }

    fn gen(n: usize, range: i64, seed: u64) -> (Vec<[i64; 3]>, Vec<(u64, i64)>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ivs: Vec<[i64; 3]> = (0..n)
            .map(|_| {
                let a = rng.gen_range(0..range);
                let b = rng.gen_range(a..=range);
                [a, b, rng.gen_range(1..10)]
            })
            .collect();
        let qs: Vec<(u64, i64)> =
            (0..n as u64).map(|i| (i, rng.gen_range(-2..range + 2))).collect();
        (ivs, qs)
    }

    fn init(ivs: &[[i64; 3]], qs: &[(u64, i64)], v: usize) -> Vec<StabState> {
        block_split(ivs.to_vec(), v)
            .into_iter()
            .zip(block_split(qs.to_vec(), v))
            .map(|(ib, qb)| ((ib, qb), Vec::new()))
            .collect()
    }

    fn answers(fin: &[StabState]) -> Vec<(u64, i64)> {
        let mut out: Vec<(u64, i64)> = fin.iter().flat_map(|(_, a)| a.iter().copied()).collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn matches_naive_on_random_inputs() {
        for seed in 0..5u64 {
            let (ivs, qs) = gen(150, 300, seed);
            let want: Vec<(u64, i64)> = qs.iter().map(|&(qid, x)| (qid, naive(&ivs, x))).collect();
            let mut want = want;
            want.sort_unstable();
            for v in [3usize, 6, 8] {
                let (fin, costs) =
                    DirectRunner::default().run(&CgmIntervalStab, init(&ivs, &qs, v)).unwrap();
                assert_eq!(answers(&fin), want, "seed {seed} v {v}");
                assert_eq!(costs.lambda(), 2);
            }
        }
    }

    #[test]
    fn long_spanning_intervals() {
        let ivs = vec![[0, 1_000, 5], [400, 600, 3], [0, 0, 7]];
        let qs: Vec<(u64, i64)> = vec![(0, 0), (1, 500), (2, 999), (3, 1_001)];
        let want = vec![(0, 12), (1, 8), (2, 5), (3, 0)];
        let (fin, _) = DirectRunner::default().run(&CgmIntervalStab, init(&ivs, &qs, 6)).unwrap();
        assert_eq!(answers(&fin), want);
    }

    #[test]
    fn empty_cases() {
        let (fin, _) =
            DirectRunner::default().run(&CgmIntervalStab, init(&[], &[(0, 5)], 3)).unwrap();
        assert_eq!(answers(&fin), vec![(0, 0)]);
        let (fin, _) =
            DirectRunner::default().run(&CgmIntervalStab, init(&[[0, 1, 1]], &[], 3)).unwrap();
        assert!(answers(&fin).is_empty());
    }

    #[test]
    fn works_on_threads() {
        let (ivs, qs) = gen(100, 200, 9);
        let mut want: Vec<(u64, i64)> = qs.iter().map(|&(qid, x)| (qid, naive(&ivs, x))).collect();
        want.sort_unstable();
        let (fin, _) = ThreadedRunner::new(4).run(&CgmIntervalStab, init(&ivs, &qs, 8)).unwrap();
        assert_eq!(answers(&fin), want);
    }
}
