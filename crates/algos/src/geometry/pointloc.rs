//! CGM batched planar point location / next-element search /
//! trapezoidal decomposition (Figure 5 Group B rows 1–2).
//!
//! For every query point, find the non-crossing segment directly below
//! it. Slab-partition by `x`: each segment is replicated into every slab
//! it overlaps (bounded by the segment's slab span — the coarseness
//! assumption of the cited CGM algorithm), queries are routed by `x`,
//! and each slab answers its queries with the exact sequential sweep.
//! `λ = 2`. Running the program with queries = segment endpoints yields
//! the trapezoidal-decomposition information.

use cgmio_geom::{sweep_point_location, Point};
use cgmio_model::{CgmProgram, RoundCtx, Status};

use super::slab::{choose_splitters, local_samples, slab_of};

/// State: `((segments as (id, [ax, ay, bx, by]), queries as (qid, x,
/// y)), answers as (qid, seg_id_or_MAX))`.
pub type PointLocState = ((Vec<(u64, [i64; 4])>, Vec<(u64, i64, i64)>), Vec<(u64, u64)>);

/// The slab-based batched point-location program.
#[derive(Debug, Clone, Copy, Default)]
pub struct CgmPointLocation;

impl CgmProgram for CgmPointLocation {
    /// `(tag, id, [a, b, c, d])`: tag 0 = sample (a = x); 1 = segment;
    /// 2 = query (a = x, b = y).
    type Msg = (u64, u64, [i64; 4]);
    type State = PointLocState;

    fn round(&self, ctx: &mut RoundCtx<'_, Self::Msg>, state: &mut PointLocState) -> Status {
        let v = ctx.v;
        match ctx.round {
            0 => {
                let xs: Vec<i64> = state
                    .0
                     .0
                    .iter()
                    .flat_map(|s| [s.1[0], s.1[2]])
                    .chain(state.0 .1.iter().map(|q| q.1))
                    .collect();
                for dst in 0..v {
                    ctx.send(dst, local_samples(&xs, v).into_iter().map(|x| (0, 0, [x, 0, 0, 0])));
                }
                Status::Continue
            }
            1 => {
                let samples: Vec<i64> =
                    ctx.incoming.flatten().into_iter().map(|(_, _, s)| s[0]).collect();
                let splitters = choose_splitters(samples, v);
                for &(id, s) in &state.0 .0 {
                    let first = slab_of(&splitters, s[0]);
                    let last = slab_of(&splitters, s[2]);
                    for j in first..=last {
                        ctx.push(j, (1, id, s));
                    }
                }
                for &(qid, x, y) in &state.0 .1 {
                    ctx.push(slab_of(&splitters, x), (2, qid, [x, y, 0, 0]));
                }
                state.0 .0.clear();
                state.0 .1.clear();
                Status::Continue
            }
            _ => {
                let mut segs: Vec<(u64, (Point, Point))> = Vec::new();
                let mut queries: Vec<(u64, Point)> = Vec::new();
                for (_src, items) in ctx.incoming.iter() {
                    for &(tag, id, [a, b, c, d]) in items {
                        match tag {
                            1 => segs.push((id, ((a, b), (c, d)))),
                            2 => queries.push((id, (a, b))),
                            _ => unreachable!(),
                        }
                    }
                }
                segs.sort_unstable_by_key(|&(id, _)| id);
                let coords: Vec<(Point, Point)> = segs.iter().map(|&(_, s)| s).collect();
                let qpts: Vec<Point> = queries.iter().map(|&(_, p)| p).collect();
                let found = sweep_point_location(&coords, &qpts);
                state.1 = queries
                    .iter()
                    .zip(found)
                    .map(|(&(qid, _), f)| (qid, f.map(|i| segs[i as usize].0).unwrap_or(u64::MAX)))
                    .collect();
                state.1.sort_unstable();
                Status::Done
            }
        }
    }

    fn rounds_hint(&self, _v: usize) -> Option<usize> {
        Some(3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgmio_data::{block_split, random_points, random_segments};
    use cgmio_geom::segment_below;
    use cgmio_model::{DirectRunner, ThreadedRunner};

    fn make_segs(n: usize, width: i64, seed: u64) -> Vec<(u64, [i64; 4])> {
        random_segments(n, width, seed)
            .into_iter()
            .enumerate()
            .map(|(i, s)| (i as u64, [s.ax, s.ay, s.bx, s.by]))
            .collect()
    }

    fn init(segs: &[(u64, [i64; 4])], queries: &[(u64, i64, i64)], v: usize) -> Vec<PointLocState> {
        block_split(segs.to_vec(), v)
            .into_iter()
            .zip(block_split(queries.to_vec(), v))
            .map(|(sb, qb)| ((sb, qb), Vec::new()))
            .collect()
    }

    fn answers(fin: &[PointLocState]) -> Vec<(u64, u64)> {
        let mut out: Vec<(u64, u64)> = fin.iter().flat_map(|(_, a)| a.iter().copied()).collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn matches_reference_on_random_inputs() {
        for seed in 0..4u64 {
            let segs = make_segs(50, 400, seed);
            let coords: Vec<(Point, Point)> =
                segs.iter().map(|&(_, [ax, ay, bx, by])| ((ax, ay), (bx, by))).collect();
            let queries: Vec<(u64, i64, i64)> = random_points(200, 400, seed + 9)
                .into_iter()
                .enumerate()
                .map(|(i, (x, y))| (i as u64, x, y * 2))
                .collect();
            let want: Vec<(u64, u64)> = queries
                .iter()
                .map(|&(qid, x, y)| {
                    (qid, segment_below(&coords, (x, y)).map(u64::from).unwrap_or(u64::MAX))
                })
                .collect();
            let mut want = want;
            want.sort_unstable();
            let (fin, costs) =
                DirectRunner::default().run(&CgmPointLocation, init(&segs, &queries, 6)).unwrap();
            assert_eq!(answers(&fin), want, "seed {seed}");
            assert_eq!(costs.lambda(), 2);
        }
    }

    #[test]
    fn trapezoid_decomposition_via_endpoint_queries() {
        let segs = make_segs(30, 300, 7);
        let coords: Vec<(Point, Point)> =
            segs.iter().map(|&(_, [ax, ay, bx, by])| ((ax, ay), (bx, by))).collect();
        // queries = endpoints nudged down by 0 (the endpoint itself):
        // answer is the segment itself or the one below it
        let queries: Vec<(u64, i64, i64)> = segs
            .iter()
            .flat_map(|&(id, [ax, ay, bx, by])| [(2 * id, ax, ay), (2 * id + 1, bx, by)])
            .collect();
        let (fin, _) =
            DirectRunner::default().run(&CgmPointLocation, init(&segs, &queries, 5)).unwrap();
        for &(qid, found) in &answers(&fin) {
            let (sid, x, y) = {
                let q = queries.iter().find(|q| q.0 == qid).unwrap();
                (qid / 2, q.1, q.2)
            };
            // the endpoint lies on its own segment, so the answer is a
            // segment at the same height or the segment itself
            let want = segment_below(&coords, (x, y)).map(u64::from).unwrap();
            assert_eq!(found, want, "endpoint of segment {sid}");
        }
    }

    #[test]
    fn queries_below_everything_return_max() {
        let segs = make_segs(10, 100, 1);
        let queries = vec![(0u64, 50i64, -10_000i64)];
        let (fin, _) =
            DirectRunner::default().run(&CgmPointLocation, init(&segs, &queries, 4)).unwrap();
        assert_eq!(answers(&fin), vec![(0, u64::MAX)]);
    }

    #[test]
    fn works_on_threads() {
        let segs = make_segs(40, 300, 3);
        let coords: Vec<(Point, Point)> =
            segs.iter().map(|&(_, [ax, ay, bx, by])| ((ax, ay), (bx, by))).collect();
        let queries: Vec<(u64, i64, i64)> = random_points(100, 300, 8)
            .into_iter()
            .enumerate()
            .map(|(i, (x, y))| (i as u64, x, y * 2))
            .collect();
        let mut want: Vec<(u64, u64)> = queries
            .iter()
            .map(|&(qid, x, y)| {
                (qid, segment_below(&coords, (x, y)).map(u64::from).unwrap_or(u64::MAX))
            })
            .collect();
        want.sort_unstable();
        let (fin, _) =
            ThreadedRunner::new(4).run(&CgmPointLocation, init(&segs, &queries, 8)).unwrap();
        assert_eq!(answers(&fin), want);
    }
}
