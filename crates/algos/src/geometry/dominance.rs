//! CGM 2D weighted dominance counting (Figure 5 Group B row 7) — exact
//! and fully coarse-grained.
//!
//! For every point `p`, compute the total weight of points `q ≠ p` with
//! `q.x ≤ p.x` and `q.y ≤ p.y`. The decomposition:
//!
//! * points are bucketed by `y` (sampled splitters) *and* slabbed by `x`
//!   (sampled splitters);
//! * **local term** — dominance among points of the same `x`-slab,
//!   computed exactly with the sequential Fenwick sweep;
//! * **full-bucket cross term** — the `v × v` weight matrix `W[slab][bucket]`
//!   is all-reduced (`O(v²)` items), so every processor can evaluate
//!   `Σ_{slab < j, bucket < k} W` in O(1) per point;
//! * **partial-bucket cross term** — each point queries the owner of its
//!   own `y`-bucket, which knows every point of that bucket together
//!   with its `x`-slab, and answers `Σ weight{y ≤ y_p, slab < j}`.
//!
//! `λ = 5` rounds, every h-relation `O(N/v + v²)`.

use cgmio_geom::dominance::dominance_weights;
use cgmio_model::{CgmProgram, RoundCtx, Status};

use super::slab::{choose_splitters, local_samples, slab_of};

/// State:
/// `((points as (id, x, y, w), x_splitters, y_splitters),
///   (bucket_points as (x, y, w, slab), w_matrix_prefix),
///   answers as (id, weight))`
pub type DominanceState =
    ((Vec<[i64; 4]>, Vec<i64>, Vec<i64>), (Vec<[i64; 4]>, Vec<i64>), Vec<(u64, i64)>);

/// The exact CGM dominance-counting program.
#[derive(Debug, Clone, Copy, Default)]
pub struct CgmDominance;

impl CgmProgram for CgmDominance {
    /// `(tag, a, [b, c, d])`:
    /// tag 0 = x-sample (a); 1 = y-sample (a);
    /// 2 = point to y-bucket `(id = a, [x, y, w])`;
    /// 3 = W row entry `(slab = a, [bucket, weight, 0])`;
    /// 4 = point to x-slab `(id = a, [x, y, w])`;
    /// 5 = partial query `(id = a, [y, slab, 0])`;
    /// 6 = partial reply `(id = a, [weight, 0, 0])`.
    type Msg = (u64, i64, [i64; 3]);
    type State = DominanceState;

    fn round(&self, ctx: &mut RoundCtx<'_, Self::Msg>, state: &mut DominanceState) -> Status {
        let v = ctx.v;
        match ctx.round {
            0 => {
                let xs: Vec<i64> = state.0 .0.iter().map(|p| p[1]).collect();
                let ys: Vec<i64> = state.0 .0.iter().map(|p| p[2]).collect();
                for dst in 0..v {
                    ctx.send(dst, local_samples(&xs, v).into_iter().map(|x| (0, x, [0; 3])));
                    ctx.send(dst, local_samples(&ys, v).into_iter().map(|y| (1, y, [0; 3])));
                }
                Status::Continue
            }
            1 => {
                let mut xsamples = Vec::new();
                let mut ysamples = Vec::new();
                for (_src, items) in ctx.incoming.iter() {
                    for &(tag, val, _) in items {
                        if tag == 0 {
                            xsamples.push(val);
                        } else {
                            ysamples.push(val);
                        }
                    }
                }
                state.0 .1 = choose_splitters(xsamples, v);
                state.0 .2 = choose_splitters(ysamples, v);
                for &[id, x, y, w] in &state.0 .0 {
                    ctx.push(slab_of(&state.0 .2, y), (2, id, [x, y, w]));
                }
                state.0 .0.clear();
                Status::Continue
            }
            2 => {
                // y-bucket owner: record bucket points with their x-slab,
                // broadcast this bucket's W row, forward points to x-slabs.
                let mut w_row = vec![0i64; v];
                let mut forwards: Vec<(usize, Self::Msg)> = Vec::new();
                for (_src, items) in ctx.incoming.iter() {
                    for &(_, id, [x, y, w]) in items {
                        let slab = slab_of(&state.0 .1, x);
                        state.1 .0.push([x, y, w, slab as i64]);
                        w_row[slab] += w;
                        forwards.push((slab, (4, id, [x, y, w])));
                    }
                }
                for (dst, msg) in forwards {
                    ctx.push(dst, msg);
                }
                // sort bucket points by (y, slab) for prefix queries
                state.1 .0.sort_unstable_by_key(|p| (p[1], p[3]));
                let bucket = ctx.pid as i64;
                for dst in 0..v {
                    for (slab, &w) in w_row.iter().enumerate() {
                        if w != 0 {
                            ctx.push(dst, (3, slab as i64, [bucket, w, 0]));
                        }
                    }
                }
                Status::Continue
            }
            3 => {
                // x-slab owner: W matrix prefix, local dominance, and
                // partial-bucket queries.
                let mut w_mat = vec![vec![0i64; v]; v]; // [slab][bucket]
                let mut pts: Vec<[i64; 4]> = Vec::new(); // id, x, y, w
                for (_src, items) in ctx.incoming.iter() {
                    for &(tag, a, [b, c, d]) in items {
                        match tag {
                            3 => w_mat[a as usize][b as usize] += c,
                            4 => pts.push([a, b, c, d]),
                            _ => unreachable!(),
                        }
                    }
                }
                pts.sort_unstable(); // by id: deterministic
                                     // prefix sums: pref[jslab][kbucket] = Σ_{i<jslab, k'<kbucket} W
                let mut pref = vec![vec![0i64; v + 1]; v + 1];
                for j in 0..v {
                    for k in 0..v {
                        pref[j + 1][k + 1] =
                            pref[j][k + 1] + pref[j + 1][k] - pref[j][k] + w_mat[j][k];
                    }
                }
                // local dominance among this slab's points
                let coords: Vec<(i64, i64)> = pts.iter().map(|p| (p[1], p[2])).collect();
                let weights: Vec<i64> = pts.iter().map(|p| p[3]).collect();
                let local = dominance_weights(&coords, &weights);
                let j = ctx.pid;
                state.2 = pts
                    .iter()
                    .zip(&local)
                    .map(|(p, &l)| {
                        let k = slab_of(&state.0 .2, p[2]);
                        let full = pref[j][k];
                        (p[0] as u64, l as i64 + full)
                    })
                    .collect();
                // partial-bucket queries: bucket k of each point, slabs < j
                for p in &pts {
                    let k = slab_of(&state.0 .2, p[2]);
                    ctx.push(k, (5, p[0], [p[2], j as i64, 0]));
                }
                Status::Continue
            }
            4 => {
                // y-bucket owner answers partial queries over its sorted
                // bucket points.
                let mut replies: Vec<(usize, Self::Msg)> = Vec::new();
                for (src, items) in ctx.incoming.iter() {
                    for &(_, id, [y, jslab, _]) in items {
                        let total: i64 = state
                            .1
                             .0
                            .iter()
                            .take_while(|p| p[1] <= y)
                            .filter(|p| p[3] < jslab)
                            .map(|p| p[2])
                            .sum();
                        replies.push((src, (6, id, [total, 0, 0])));
                    }
                }
                for (dst, msg) in replies {
                    ctx.push(dst, msg);
                }
                Status::Continue
            }
            _ => {
                let mut partial: std::collections::HashMap<u64, i64> =
                    std::collections::HashMap::new();
                for (_src, items) in ctx.incoming.iter() {
                    for &(_, id, [wsum, _, _]) in items {
                        partial.insert(id as u64, wsum);
                    }
                }
                for (id, acc) in state.2.iter_mut() {
                    *acc += partial.get(id).copied().unwrap_or(0);
                }
                Status::Done
            }
        }
    }

    fn rounds_hint(&self, _v: usize) -> Option<usize> {
        Some(6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgmio_data::{block_split, random_points};
    use cgmio_geom::dominance::dominance_weights_naive;
    use cgmio_model::{DirectRunner, ThreadedRunner};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn init(pts: &[(i64, i64)], w: &[i64], v: usize) -> Vec<DominanceState> {
        let rows: Vec<[i64; 4]> =
            pts.iter().zip(w).enumerate().map(|(i, (&(x, y), &w))| [i as i64, x, y, w]).collect();
        block_split(rows, v)
            .into_iter()
            .map(|b| ((b, Vec::new(), Vec::new()), (Vec::new(), Vec::new()), Vec::new()))
            .collect()
    }

    fn answers(fin: &[DominanceState], n: usize) -> Vec<i64> {
        let mut out = vec![0i64; n];
        for (_, _, a) in fin {
            for &(id, w) in a {
                out[id as usize] = w;
            }
        }
        out
    }

    #[test]
    fn matches_reference_on_random_inputs() {
        for seed in 0..5u64 {
            let pts = random_points(300, 80, seed); // dense: many coordinate ties
            let mut rng = StdRng::seed_from_u64(seed + 50);
            let w: Vec<i64> = (0..300).map(|_| rng.gen_range(0..20)).collect();
            let want: Vec<i64> =
                dominance_weights_naive(&pts, &w).into_iter().map(|x| x as i64).collect();
            for v in [4usize, 7] {
                let (fin, costs) =
                    DirectRunner::default().run(&CgmDominance, init(&pts, &w, v)).unwrap();
                assert_eq!(answers(&fin, 300), want, "seed {seed} v {v}");
                assert_eq!(costs.lambda(), 5);
            }
        }
    }

    #[test]
    fn chain_accumulates() {
        let pts: Vec<(i64, i64)> = (0..40).map(|i| (i, i)).collect();
        let w = vec![1i64; 40];
        let (fin, _) = DirectRunner::default().run(&CgmDominance, init(&pts, &w, 5)).unwrap();
        let got = answers(&fin, 40);
        for (i, &x) in got.iter().enumerate() {
            assert_eq!(x, i as i64);
        }
    }

    #[test]
    fn duplicates_not_counted_as_dominating() {
        let pts = vec![(5, 5), (5, 5), (9, 9)];
        let w = vec![3, 4, 10];
        let (fin, _) = DirectRunner::default().run(&CgmDominance, init(&pts, &w, 3)).unwrap();
        assert_eq!(answers(&fin, 3), vec![0, 0, 7]);
    }

    #[test]
    fn works_on_threads() {
        let pts = random_points(200, 50, 3);
        let mut rng = StdRng::seed_from_u64(99);
        let w: Vec<i64> = (0..200).map(|_| rng.gen_range(0..10)).collect();
        let want: Vec<i64> =
            dominance_weights_naive(&pts, &w).into_iter().map(|x| x as i64).collect();
        let (fin, _) = ThreadedRunner::new(4).run(&CgmDominance, init(&pts, &w, 8)).unwrap();
        assert_eq!(answers(&fin, 200), want);
    }
}
