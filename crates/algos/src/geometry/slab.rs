//! Shared slab-partition arithmetic: splitter selection from gathered
//! samples and slab lookup.

/// Choose `v − 1` splitters from the gathered samples (regular
/// selection over the sorted sample multiset).
pub fn choose_splitters(mut samples: Vec<i64>, v: usize) -> Vec<i64> {
    samples.sort_unstable();
    (1..v).filter_map(|k| samples.get(k * samples.len() / v).copied()).collect()
}

/// Slab index of coordinate `x` under `splitters` (slab `i` covers
/// `[s_i, s_{i+1})` with `s_0 = −∞`): equal coordinates always map to
/// the same slab.
pub fn slab_of(splitters: &[i64], x: i64) -> usize {
    splitters.partition_point(|&s| s <= x)
}

/// The slab range `[lo, hi)` of slab `i` (open-ended at the extremes).
pub fn slab_range(splitters: &[i64], i: usize) -> (i64, i64) {
    let lo = if i == 0 { i64::MIN } else { splitters[i - 1] };
    let hi = if i < splitters.len() { splitters[i] } else { i64::MAX };
    (lo, hi)
}

/// Regular samples of the values in `xs` (up to `v` of them).
pub fn local_samples(xs: &[i64], v: usize) -> Vec<i64> {
    let mut sorted = xs.to_vec();
    sorted.sort_unstable();
    (0..v).filter_map(|k| sorted.get(k * sorted.len() / v).copied()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitters_partition_consistently() {
        let samples = vec![5, 1, 9, 3, 7, 2, 8, 4, 6, 0];
        let sp = choose_splitters(samples, 4);
        assert_eq!(sp.len(), 3);
        // every value maps to exactly one slab; slabs are ordered
        let mut last = 0;
        for x in 0..10 {
            let s = slab_of(&sp, x);
            assert!(s >= last);
            last = s;
            let (lo, hi) = slab_range(&sp, s);
            assert!(x < hi && (lo <= x || s == 0));
        }
    }

    #[test]
    fn equal_values_same_slab() {
        let sp = vec![5, 5, 9]; // duplicate splitters collapse slabs
        assert_eq!(slab_of(&sp, 5), 2);
        assert_eq!(slab_of(&sp, 4), 0);
        assert_eq!(slab_of(&sp, 9), 3);
    }

    #[test]
    fn empty_samples_give_single_slab() {
        let sp = choose_splitters(vec![], 4);
        assert!(sp.is_empty());
        assert_eq!(slab_of(&sp, 123), 0);
    }

    #[test]
    fn local_sampling_is_regular() {
        let xs: Vec<i64> = (0..100).rev().collect();
        let s = local_samples(&xs, 4);
        assert_eq!(s, vec![0, 25, 50, 75]);
    }
}
