//! CGM area of a union of rectangles (Figure 5 Group B row 6).
//!
//! Slab-partition by `x` (splitters sampled from rectangle edges); each
//! rectangle is clipped into the slabs it overlaps — the slabs partition
//! the plane, so per-slab union areas (computed with the exact
//! sequential sweepline) simply add up; a final all-gather of the `v`
//! partial areas gives every processor the exact total. Rectangle
//! duplication is bounded by the number of slabs a rectangle spans
//! (`O(1)` for the workloads used here, `O(v)` adversarially — the
//! slackness the cited CGM algorithm assumes).

use cgmio_geom::union_area;
use cgmio_model::{CgmProgram, RoundCtx, Status};

use super::slab::{choose_splitters, local_samples, slab_of, slab_range};

/// State: `(rects as (x1, y1, x2, y2), total_area_out)`; the area is
/// stored as `(hi, lo)` limbs of the exact `i128`.
pub type UnionAreaState = (Vec<[i64; 4]>, Vec<u64>);

/// The slab-based union-area program.
#[derive(Debug, Clone, Copy, Default)]
pub struct CgmUnionArea;

impl CgmProgram for CgmUnionArea {
    /// `(tag, [a, b, c, d])`: tag 0 = sample (a = x), 1 = clipped rect,
    /// 2 = partial area (a = hi limb, b = lo limb).
    type Msg = (u64, [i64; 4]);
    type State = UnionAreaState;

    fn round(&self, ctx: &mut RoundCtx<'_, Self::Msg>, state: &mut UnionAreaState) -> Status {
        let v = ctx.v;
        match ctx.round {
            0 => {
                let xs: Vec<i64> = state.0.iter().flat_map(|r| [r[0], r[2]]).collect();
                for dst in 0..v {
                    ctx.send(dst, local_samples(&xs, v).into_iter().map(|x| (0, [x, 0, 0, 0])));
                }
                Status::Continue
            }
            1 => {
                let samples: Vec<i64> =
                    ctx.incoming.flatten().into_iter().map(|(_, r)| r[0]).collect();
                let splitters = choose_splitters(samples, v);
                for &[x1, y1, x2, y2] in &state.0 {
                    let first = slab_of(&splitters, x1);
                    // x2 is exclusive on the right for slab purposes
                    let last = slab_of(&splitters, x2 - 1);
                    for j in first..=last {
                        let (lo, hi) = slab_range(&splitters, j);
                        let cx1 = x1.max(lo);
                        let cx2 = x2.min(hi);
                        if cx1 < cx2 {
                            ctx.push(j, (1, [cx1, y1, cx2, y2]));
                        }
                    }
                }
                state.0.clear();
                Status::Continue
            }
            2 => {
                let rects: Vec<(i64, i64, i64, i64)> = ctx
                    .incoming
                    .flatten()
                    .into_iter()
                    .map(|(_, [x1, y1, x2, y2])| (x1, y1, x2, y2))
                    .collect();
                let area = union_area(&rects);
                let hi = (area >> 64) as i64;
                let lo = area as u64 as i64;
                for dst in 0..v {
                    ctx.push(dst, (2, [hi, lo, 0, 0]));
                }
                Status::Continue
            }
            _ => {
                let total: i128 = ctx
                    .incoming
                    .flatten()
                    .into_iter()
                    .map(|(_, [hi, lo, _, _])| ((hi as i128) << 64) | (lo as u64 as i128))
                    .sum();
                state.1 = vec![(total >> 64) as u64, total as u64];
                Status::Done
            }
        }
    }

    fn rounds_hint(&self, _v: usize) -> Option<usize> {
        Some(4)
    }
}

/// Decode the `(hi, lo)` limb pair stored in the final state.
pub fn decode_area(limbs: &[u64]) -> i128 {
    ((limbs[0] as i128) << 64) | limbs[1] as i128
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgmio_data::{block_split, random_rects};
    use cgmio_model::{DirectRunner, ThreadedRunner};

    fn init(rects: &[(i64, i64, i64, i64)], v: usize) -> Vec<UnionAreaState> {
        let arr: Vec<[i64; 4]> = rects.iter().map(|&(a, b, c, d)| [a, b, c, d]).collect();
        block_split(arr, v).into_iter().map(|b| (b, Vec::new())).collect()
    }

    fn gen(n: usize, scale: i64, seed: u64) -> Vec<(i64, i64, i64, i64)> {
        random_rects(n, scale, seed).into_iter().map(|r| (r.x1, r.y1, r.x2, r.y2)).collect()
    }

    #[test]
    fn matches_sequential_union_area() {
        for seed in 0..5u64 {
            let rects = gen(200, 500, seed);
            let want = union_area(&rects);
            let (fin, costs) = DirectRunner::default().run(&CgmUnionArea, init(&rects, 6)).unwrap();
            for (_, limbs) in &fin {
                assert_eq!(decode_area(limbs), want, "seed {seed}");
            }
            assert_eq!(costs.lambda(), 3);
        }
    }

    #[test]
    fn spanning_rectangles_not_double_counted() {
        // one huge rectangle spanning all slabs plus noise
        let mut rects = gen(50, 200, 9);
        rects.push((0, 0, 1_000, 1_000));
        let want = union_area(&rects);
        let (fin, _) = DirectRunner::default().run(&CgmUnionArea, init(&rects, 8)).unwrap();
        assert_eq!(decode_area(&fin[0].1), want);
    }

    #[test]
    fn identical_rects_and_single_rect() {
        let rects = vec![(2, 2, 7, 9), (2, 2, 7, 9)];
        let (fin, _) = DirectRunner::default().run(&CgmUnionArea, init(&rects, 3)).unwrap();
        assert_eq!(decode_area(&fin[0].1), 35);
    }

    #[test]
    fn works_on_threads() {
        let rects = gen(150, 300, 4);
        let want = union_area(&rects);
        let (fin, _) = ThreadedRunner::new(4).run(&CgmUnionArea, init(&rects, 6)).unwrap();
        assert_eq!(decode_area(&fin[0].1), want);
    }
}
