//! CGM 3D maxima (Figure 5 Group B row 6).
//!
//! Slab-partition by `x`; each slab computes its local maxima and its
//! `(y, z)` staircase; staircases are all-gathered so every slab can
//! filter its local maxima against the staircases of strictly-larger-`x`
//! slabs. `λ = 3` rounds; the gather is `O(Σ staircase sizes)`.

use cgmio_geom::maxima_3d;
use cgmio_model::{CgmProgram, RoundCtx, Status};

use super::slab::{choose_splitters, local_samples, slab_of};

/// A 3D input point with its global index.
pub type Pt3 = (u64, (i64, i64, i64));

/// State: `(points, maximal_indices_out)`.
pub type MaximaState = (Vec<Pt3>, Vec<u64>);

/// The slab-based 3D maxima program.
#[derive(Debug, Clone, Copy, Default)]
pub struct CgmMaxima3d;

/// The `(y, z)` staircase (maximal pairs) of a point multiset:
/// descending `y`, ascending `z`.
fn staircase(pts: &[(i64, i64)]) -> Vec<(i64, i64)> {
    let mut sorted: Vec<(i64, i64)> = pts.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a)); // y desc, z desc
    let mut out: Vec<(i64, i64)> = Vec::new();
    let mut best_z = i64::MIN;
    for (y, z) in sorted {
        if z > best_z {
            out.push((y, z));
            best_z = z;
        }
    }
    out
}

/// Is `(y, z)` dominated (both ≥) by a staircase entry?
fn dominated(stairs: &[(i64, i64)], y: i64, z: i64) -> bool {
    // stairs: y descending, z ascending. Entries with y' >= y form a
    // prefix; the last of them has the largest z.
    let pos = stairs.partition_point(|&(sy, _)| sy >= y);
    pos > 0 && stairs[pos - 1].1 >= z
}

impl CgmProgram for CgmMaxima3d {
    /// Rounds 0/2 use `(tag_or_idx, (x_or_y, y_or_z, z))` frames.
    type Msg = (u64, (i64, i64, i64));
    type State = MaximaState;

    fn round(&self, ctx: &mut RoundCtx<'_, Self::Msg>, state: &mut MaximaState) -> Status {
        let v = ctx.v;
        match ctx.round {
            0 => {
                let xs: Vec<i64> = state.0.iter().map(|p| p.1 .0).collect();
                for dst in 0..v {
                    ctx.send(dst, local_samples(&xs, v).into_iter().map(|x| (0, (x, 0, 0))));
                }
                Status::Continue
            }
            1 => {
                let samples: Vec<i64> =
                    ctx.incoming.flatten().into_iter().map(|(_, (x, _, _))| x).collect();
                let splitters = choose_splitters(samples, v);
                for &(idx, p) in &state.0 {
                    ctx.push(slab_of(&splitters, p.0), (idx, p));
                }
                state.0.clear();
                Status::Continue
            }
            2 => {
                state.0 = ctx.incoming.flatten();
                // broadcast this slab's (y, z) staircase
                let yz: Vec<(i64, i64)> = state.0.iter().map(|&(_, (_, y, z))| (y, z)).collect();
                for dst in 0..v {
                    ctx.send(dst, staircase(&yz).into_iter().map(|(y, z)| (0, (y, z, 0))));
                }
                Status::Continue
            }
            _ => {
                // merge staircases of strictly-higher slabs
                let higher: Vec<(i64, i64)> = ctx
                    .incoming
                    .iter()
                    .filter(|&(src, _)| src > ctx.pid)
                    .flat_map(|(_, items)| items.iter().map(|&(_, (y, z, _))| (y, z)))
                    .collect();
                let stairs = staircase(&higher);
                // local maxima first, then global filter
                let coords: Vec<(i64, i64, i64)> = state.0.iter().map(|&(_, p)| p).collect();
                let local_max = maxima_3d(&coords);
                state.1 = local_max
                    .into_iter()
                    .filter(|&i| {
                        let (_, y, z) = coords[i];
                        !dominated(&stairs, y, z)
                    })
                    .map(|i| state.0[i].0)
                    .collect();
                state.1.sort_unstable();
                state.0.clear();
                Status::Done
            }
        }
    }

    fn rounds_hint(&self, _v: usize) -> Option<usize> {
        Some(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgmio_data::block_split;
    use cgmio_geom::maxima::maxima_3d_naive;
    use cgmio_model::{DirectRunner, ThreadedRunner};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn pts3(n: usize, range: i64, seed: u64) -> Vec<(i64, i64, i64)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (rng.gen_range(0..range), rng.gen_range(0..range), rng.gen_range(0..range)))
            .collect()
    }

    fn init(pts: &[(i64, i64, i64)], v: usize) -> Vec<MaximaState> {
        let indexed: Vec<Pt3> =
            pts.iter().copied().enumerate().map(|(i, p)| (i as u64, p)).collect();
        block_split(indexed, v).into_iter().map(|b| (b, Vec::new())).collect()
    }

    fn result(fin: &[MaximaState]) -> Vec<u64> {
        let mut out: Vec<u64> = fin.iter().flat_map(|(_, m)| m.iter().copied()).collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn matches_reference_on_random_inputs() {
        for seed in 0..5u64 {
            let pts = pts3(400, 60, seed); // small range => many ties
            let want: Vec<u64> = maxima_3d_naive(&pts).into_iter().map(|i| i as u64).collect();
            let (fin, costs) = DirectRunner::default().run(&CgmMaxima3d, init(&pts, 7)).unwrap();
            assert_eq!(result(&fin), want, "seed {seed}");
            assert_eq!(costs.lambda(), 3);
        }
    }

    #[test]
    fn chain_and_antichain() {
        let chain: Vec<(i64, i64, i64)> = (0..60).map(|i| (i, i, i)).collect();
        let (fin, _) = DirectRunner::default().run(&CgmMaxima3d, init(&chain, 4)).unwrap();
        assert_eq!(result(&fin), vec![59]);

        let anti: Vec<(i64, i64, i64)> = (0..60).map(|i| (i, 59 - i, 7)).collect();
        let (fin, _) = DirectRunner::default().run(&CgmMaxima3d, init(&anti, 4)).unwrap();
        assert_eq!(result(&fin).len(), 60);
    }

    #[test]
    fn duplicates_handled() {
        let pts = vec![(5, 5, 5), (5, 5, 5), (6, 6, 6), (0, 0, 9)];
        let (fin, _) = DirectRunner::default().run(&CgmMaxima3d, init(&pts, 3)).unwrap();
        assert_eq!(result(&fin), vec![2, 3]);
    }

    #[test]
    fn works_on_threads() {
        let pts = pts3(300, 100, 9);
        let want: Vec<u64> = maxima_3d_naive(&pts).into_iter().map(|i| i as u64).collect();
        let (fin, _) = ThreadedRunner::new(4).run(&CgmMaxima3d, init(&pts, 6)).unwrap();
        assert_eq!(result(&fin), want);
    }
}
