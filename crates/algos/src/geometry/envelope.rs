//! CGM lower envelope of non-crossing segments
//! (Figure 5 Group B rows 4–5).
//!
//! Each processor computes the exact envelope of its own segments, then
//! a `⌈log₂ v⌉`-round combining tree merges partial envelopes pairwise
//! (processor `i` with bit `k` set ships its envelope to `i − 2^k`);
//! after the last round processor 0 holds the global envelope. Every
//! merge uses the exact sequential merge from `cgmio-geom`. Envelope
//! sizes are `O(m)` for `m` non-crossing segments, so round `k` moves
//! `O(2^k · N/v)` items at `v/2^k` processors — the classic gather with
//! combining.

use cgmio_geom::{lower_envelope, merge_envelopes, EnvPiece, Point};
use cgmio_model::{CgmProgram, RoundCtx, Status};

use super::super::graphs::jump_iters;

/// An envelope piece on the wire / in state: `(seg_id, [x1, x2, ax, ay,
/// bx, by])` — the piece interval plus the visible segment's endpoints
/// (so a receiver can run exact comparisons without a segment table).
pub type WirePiece = (u64, [i64; 6]);

/// State: `(segments as (id, [ax, ay, bx, by]), envelope_pieces)`.
/// After the run, processor 0's `envelope_pieces` is the global lower
/// envelope, in order.
pub type EnvelopeState = (Vec<(u64, [i64; 4])>, Vec<WirePiece>);

/// The combining-tree lower-envelope program.
#[derive(Debug, Clone, Copy, Default)]
pub struct CgmLowerEnvelope;

fn to_wire(pieces: &[EnvPiece], segs: &[(u64, [i64; 4])]) -> Vec<WirePiece> {
    pieces
        .iter()
        .map(|p| {
            let (id, s) = segs[p.seg as usize];
            (id, [p.x1, p.x2, s[0], s[1], s[2], s[3]])
        })
        .collect()
}

/// Merge two wire-format envelopes exactly.
pub fn merge_wire(a: &[WirePiece], b: &[WirePiece]) -> Vec<WirePiece> {
    // Build a combined segment table; piece seg indices point into it.
    let mut segs: Vec<(Point, Point)> = Vec::with_capacity(a.len() + b.len());
    let mut ids: Vec<u64> = Vec::with_capacity(a.len() + b.len());
    let mut conv = |src: &[WirePiece]| -> Vec<EnvPiece> {
        src.iter()
            .map(|&(id, [x1, x2, ax, ay, bx, by])| {
                segs.push(((ax, ay), (bx, by)));
                ids.push(id);
                EnvPiece { x1, x2, seg: (segs.len() - 1) as u32 }
            })
            .collect()
    };
    let pa = conv(a);
    let pb = conv(b);
    let merged = merge_envelopes(&pa, &pb, &segs, true);
    merged
        .iter()
        .map(|p| {
            let s = segs[p.seg as usize];
            (ids[p.seg as usize], [p.x1, p.x2, s.0 .0, s.0 .1, s.1 .0, s.1 .1])
        })
        .collect()
}

impl CgmProgram for CgmLowerEnvelope {
    type Msg = WirePiece;
    type State = EnvelopeState;

    fn round(&self, ctx: &mut RoundCtx<'_, WirePiece>, state: &mut EnvelopeState) -> Status {
        let v = ctx.v;
        let levels = jump_iters(v);
        if ctx.round == 0 {
            let segs: Vec<(Point, Point)> =
                state.0.iter().map(|&(_, [ax, ay, bx, by])| ((ax, ay), (bx, by))).collect();
            let env = lower_envelope(&segs);
            state.1 = to_wire(&env, &state.0);
            state.0.clear();
        } else {
            // merge whatever arrived (at most one partner per round)
            let arrived: Vec<WirePiece> = ctx.incoming.flatten();
            if !arrived.is_empty() {
                state.1 = merge_wire(&state.1, &arrived);
            }
        }
        if ctx.round == levels {
            return Status::Done;
        }
        let k = ctx.round;
        if ctx.pid & (1 << k) != 0 && ctx.pid.is_multiple_of(1 << k) {
            let partner = ctx.pid - (1 << k);
            let pieces = std::mem::take(&mut state.1);
            ctx.send(partner, pieces);
        }
        Status::Continue
    }

    fn rounds_hint(&self, v: usize) -> Option<usize> {
        Some(jump_iters(v) + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgmio_data::{block_split, random_segments};
    use cgmio_model::{DirectRunner, ThreadedRunner};

    fn make(n: usize, width: i64, seed: u64) -> Vec<(u64, [i64; 4])> {
        random_segments(n, width, seed)
            .into_iter()
            .enumerate()
            .map(|(i, s)| (i as u64, [s.ax, s.ay, s.bx, s.by]))
            .collect()
    }

    fn init(segs: &[(u64, [i64; 4])], v: usize) -> Vec<EnvelopeState> {
        block_split(segs.to_vec(), v).into_iter().map(|b| (b, Vec::new())).collect()
    }

    fn reference(segs: &[(u64, [i64; 4])]) -> Vec<WirePiece> {
        let pts: Vec<(Point, Point)> =
            segs.iter().map(|&(_, [ax, ay, bx, by])| ((ax, ay), (bx, by))).collect();
        let env = lower_envelope(&pts);
        to_wire(&env, segs)
    }

    #[test]
    fn matches_sequential_envelope() {
        for seed in 0..4u64 {
            let segs = make(80, 400, seed);
            let want = reference(&segs);
            for v in [2usize, 4, 7, 8] {
                let (fin, costs) =
                    DirectRunner::default().run(&CgmLowerEnvelope, init(&segs, v)).unwrap();
                assert_eq!(fin[0].1, want, "seed {seed} v {v}");
                assert!(costs.lambda() <= jump_iters(v));
            }
        }
    }

    #[test]
    fn single_processor_degenerates() {
        let segs = make(20, 100, 9);
        let want = reference(&segs);
        let (fin, _) = DirectRunner::default().run(&CgmLowerEnvelope, init(&segs, 1)).unwrap();
        assert_eq!(fin[0].1, want);
    }

    #[test]
    fn empty_input() {
        let (fin, _) = DirectRunner::default().run(&CgmLowerEnvelope, init(&[], 4)).unwrap();
        assert!(fin[0].1.is_empty());
    }

    #[test]
    fn works_on_threads() {
        let segs = make(60, 300, 2);
        let want = reference(&segs);
        let (fin, _) = ThreadedRunner::new(3).run(&CgmLowerEnvelope, init(&segs, 8)).unwrap();
        assert_eq!(fin[0].1, want);
    }
}
