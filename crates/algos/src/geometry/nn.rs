//! CGM all-nearest-neighbours for a planar point set
//! (Figure 5 Group B row 6).
//!
//! Slab-partition by `x`; each slab answers its points locally with a
//! kd-tree, then sends a query to every other slab whose `x`-range is
//! closer than the current best distance (for random inputs only the
//! adjacent slabs, and only for points near a boundary). One
//! reply round later every point has its exact nearest neighbour.
//! `λ = 4`, exact squared distances in `i64` (coordinates must stay
//! below `2^30`).

use cgmio_geom::{KdTree, Point};
use cgmio_model::{CgmProgram, RoundCtx, Status};

use super::slab::{choose_splitters, local_samples, slab_of, slab_range};

/// State: `((points_with_ids, splitters), results)` — `results` maps
/// each owned point id to `(nn_id, d²)`.
pub type NnState = ((Vec<(u64, (i64, i64))>, Vec<i64>), Vec<(u64, u64, u64)>);

/// The slab-based all-nearest-neighbours program.
#[derive(Debug, Clone, Copy, Default)]
pub struct CgmAllNearestNeighbors;

fn best_merge(cur: (u64, u64), cand: (u64, u64)) -> (u64, u64) {
    // compare (d², id)
    if (cand.1, cand.0) < (cur.1, cur.0) {
        cand
    } else {
        cur
    }
}

impl CgmProgram for CgmAllNearestNeighbors {
    /// `(tag, id_or_qid, (x, y))` with tag 0 = sample/point, 1 = query,
    /// 2 = reply (then the payload is `(qid, (candidate_id, d²))`).
    type Msg = (u64, u64, (i64, i64));
    type State = NnState;

    fn round(&self, ctx: &mut RoundCtx<'_, Self::Msg>, state: &mut NnState) -> Status {
        let v = ctx.v;
        match ctx.round {
            0 => {
                let xs: Vec<i64> = state.0 .0.iter().map(|p| p.1 .0).collect();
                for dst in 0..v {
                    ctx.send(dst, local_samples(&xs, v).into_iter().map(|x| (0, 0, (x, 0))));
                }
                Status::Continue
            }
            1 => {
                let samples: Vec<i64> =
                    ctx.incoming.flatten().into_iter().map(|(_, _, (x, _))| x).collect();
                state.0 .1 = choose_splitters(samples, v);
                for &(id, p) in &state.0 .0 {
                    ctx.push(slab_of(&state.0 .1, p.0), (0, id, p));
                }
                state.0 .0.clear();
                Status::Continue
            }
            2 => {
                state.0 .0 = ctx.incoming.flatten().into_iter().map(|(_, id, p)| (id, p)).collect();
                let pts: Vec<Point> = state.0 .0.iter().map(|&(_, p)| p).collect();
                let tree = KdTree::build(&pts);
                let splitters = state.0 .1.clone();
                state.1 = Vec::with_capacity(pts.len());
                for (k, &(id, p)) in state.0 .0.iter().enumerate() {
                    let local = tree.nearest(p, k as u32);
                    let (mut nn, mut d2v): (u64, u64) = match local {
                        Some((j, d)) => (state.0 .0[j as usize].0, d as u64),
                        None => (u64::MAX, u64::MAX),
                    };
                    // query other slabs closer than the current best
                    for j in 0..v {
                        if j == ctx.pid {
                            continue;
                        }
                        let (lo, hi) = slab_range(&splitters, j);
                        let xdist = if p.0 < lo {
                            (lo - p.0) as u64
                        } else if p.0 >= hi {
                            (p.0 - hi + 1) as u64
                        } else {
                            0
                        };
                        // `<=` so equal-distance candidates (which may
                        // win the tie on smaller id) are also fetched
                        if d2v == u64::MAX || xdist.saturating_mul(xdist) <= d2v {
                            ctx.push(j, (1, id, p));
                        }
                    }
                    // stash current best alongside the id
                    if nn == u64::MAX {
                        d2v = u64::MAX;
                        nn = u64::MAX;
                    }
                    state.1.push((id, nn, d2v));
                }
                Status::Continue
            }
            3 => {
                // answer foreign queries with the best local candidate
                let pts: Vec<Point> = state.0 .0.iter().map(|&(_, p)| p).collect();
                let tree = KdTree::build(&pts);
                let mut replies: Vec<(usize, Self::Msg)> = Vec::new();
                for (src, items) in ctx.incoming.iter() {
                    for &(_, qid, p) in items {
                        if let Some((j, d)) = tree.nearest(p, u32::MAX) {
                            let cand = state.0 .0[j as usize].0;
                            replies.push((src, (2, qid, (cand as i64, d as i64))));
                        }
                    }
                }
                for (dst, msg) in replies {
                    ctx.push(dst, msg);
                }
                Status::Continue
            }
            _ => {
                for (_src, items) in ctx.incoming.iter() {
                    for &(_, qid, (cand, d2c)) in items {
                        if let Some(entry) = state.1.iter_mut().find(|(id, _, _)| *id == qid) {
                            let merged = best_merge((entry.1, entry.2), (cand as u64, d2c as u64));
                            entry.1 = merged.0;
                            entry.2 = merged.1;
                        }
                    }
                }
                Status::Done
            }
        }
    }

    fn rounds_hint(&self, _v: usize) -> Option<usize> {
        Some(5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgmio_data::{block_split, random_points};
    use cgmio_geom::kdtree::all_nearest_neighbors;
    use cgmio_model::{DirectRunner, ThreadedRunner};

    fn init(pts: &[Point], v: usize) -> Vec<NnState> {
        let indexed: Vec<(u64, Point)> =
            pts.iter().copied().enumerate().map(|(i, p)| (i as u64, p)).collect();
        block_split(indexed, v).into_iter().map(|b| ((b, Vec::new()), Vec::new())).collect()
    }

    fn result(fin: &[NnState], n: usize) -> Vec<u64> {
        let mut out = vec![u64::MAX; n];
        for (_, res) in fin {
            for &(id, nn, _) in res {
                out[id as usize] = nn;
            }
        }
        out
    }

    #[test]
    fn matches_reference_on_random_inputs() {
        for seed in 0..4u64 {
            let pts = random_points(500, 2_000, seed);
            let want: Vec<u64> =
                all_nearest_neighbors(&pts).into_iter().map(|x| x as u64).collect();
            let (fin, costs) =
                DirectRunner::default().run(&CgmAllNearestNeighbors, init(&pts, 6)).unwrap();
            assert_eq!(result(&fin, pts.len()), want, "seed {seed}");
            assert_eq!(costs.lambda(), 4);
        }
    }

    #[test]
    fn cross_slab_neighbours_found() {
        // two tight clusters far apart: every NN is inside the cluster,
        // except with singleton "bridge" points whose NN crosses slabs
        let mut pts: Vec<Point> = (0..40).map(|i| (i % 8, i / 8)).collect();
        pts.extend((0..40).map(|i| (1_000_000 + i % 8, i / 8)));
        let want: Vec<u64> = all_nearest_neighbors(&pts).into_iter().map(|x| x as u64).collect();
        let (fin, _) = DirectRunner::default().run(&CgmAllNearestNeighbors, init(&pts, 5)).unwrap();
        assert_eq!(result(&fin, pts.len()), want);
    }

    #[test]
    fn tiny_inputs() {
        let pts = vec![(0, 0), (10, 0)];
        let (fin, _) = DirectRunner::default().run(&CgmAllNearestNeighbors, init(&pts, 4)).unwrap();
        assert_eq!(result(&fin, 2), vec![1, 0]);
    }

    #[test]
    fn works_on_threads() {
        let pts = random_points(300, 1_000, 7);
        let want: Vec<u64> = all_nearest_neighbors(&pts).into_iter().map(|x| x as u64).collect();
        let (fin, _) = ThreadedRunner::new(3).run(&CgmAllNearestNeighbors, init(&pts, 6)).unwrap();
        assert_eq!(result(&fin, pts.len()), want);
    }
}
