//! The concurrent I/O engine: one worker thread + bounded submission
//! queue per simulated drive.
//!
//! A PDM parallel operation touches at most one track per disk, so the
//! `D` block transfers of one legal operation land on `D` different
//! workers and proceed concurrently — the simulation finally *behaves*
//! like the model it counts: one parallel op ≈ one physical op time.
//!
//! On top of the per-drive queues the engine layers:
//!
//! * **write-behind** — `write_batch` returns once the blocks are
//!   queued; the bounded queue (`IoEngineOpts::queue_depth`) provides
//!   backpressure, and write errors are held sticky until the next
//!   write or flush surfaces them,
//! * **prefetch** — `prefetch` enqueues background reads into a small
//!   per-drive cache; a later demand read of the same track is a cache
//!   hit. Hints are dropped (never block) when a queue is full,
//! * **coherence for free** — each drive's queue is FIFO, so a demand
//!   read submitted after a write-behind of the same track always sees
//!   the new data, with no extra locking,
//! * **durability modes** — [`Durability::SyncPerSuperstep`] makes every
//!   flush fsync the drive files (in parallel, one fsync per worker);
//!   [`Durability::None`] leaves persistence to the OS page cache,
//! * **graceful shutdown** — dropping the engine closes the queues;
//!   workers drain every already-submitted op before exiting, and the
//!   drop joins them.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use cgmio_obs::{Counter, Gauge, Histogram, Obs, Phase, PhaseCell};
use cgmio_pdm::{
    classify, BlockPool, DiskGeometry, FileStorage, PooledBlock, TrackAddr, TrackStorage,
};
use cgmio_pdm::{FaultError, IoErrorKind};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};

use crate::retry::{track_checksum, RetryPolicy};
use crate::trace::{OpKind, TraceEvent, TraceHandle};

/// When data must reach stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// Never fsync; persistence is best-effort (fastest, the default —
    /// the simulation's results don't depend on surviving power loss).
    #[default]
    None,
    /// Every flush (the runners flush once per superstep) fsyncs all
    /// drive files before returning.
    SyncPerSuperstep,
}

/// Tuning knobs for [`ConcurrentStorage`].
#[derive(Debug, Clone)]
pub struct IoEngineOpts {
    /// Capacity of each drive's submission queue; a full queue makes
    /// writers block (backpressure) and prefetch hints get dropped.
    pub queue_depth: usize,
    /// Blocks each drive's prefetch cache may hold (FIFO eviction).
    pub prefetch_cache_blocks: usize,
    /// Durability mode applied on flush.
    pub durability: Durability,
    /// Record an I/O event trace (see [`crate::trace`]).
    pub trace: bool,
    /// Simulated processor index stamped into trace events.
    pub proc: usize,
    /// Retry policy the drive workers apply to transient read/write
    /// faults (see [`crate::retry`]). Retries are counted per op in the
    /// event trace.
    pub retry: RetryPolicy,
    /// Keep an in-memory FNV checksum per written track and verify every
    /// read against it; a mismatch surfaces as an
    /// [`IoErrorKind::Corrupt`] fault instead of silently returning bad
    /// data.
    pub verify_checksums: bool,
    /// Observability handle. When set, the workers record per-drive
    /// service-time histograms, byte/cache-hit/retry counters, and
    /// queue-depth gauges into its registry, and every trace event is
    /// stamped with the `(superstep, phase)` published through the
    /// handle's [`PhaseCell`] by the runner's
    /// spans. `None` (the default) skips all of it.
    pub obs: Option<Obs>,
    /// Silently discard prefetch hints. Demand reads, vectored gathers,
    /// and pre-issued pipeline reads are unaffected — only best-effort
    /// cache-fill hints are dropped. Set by the runners whenever a fault
    /// plan is active: hint traffic is free in the cost model but would
    /// still consume deterministic fault rolls beneath the engine, and
    /// how many hints fire varies with pipeline depth and cache
    /// pressure. Binding faults to demand accesses only keeps injected
    /// fault and retry totals bit-identical at every pipeline depth.
    pub ignore_hints: bool,
    /// Open backing files with `O_DIRECT` where the platform and
    /// filesystem allow it, bypassing the page cache (real device
    /// transfers with sector-aligned pooled buffers). Only honoured by
    /// the async submission backend's raw file path
    /// ([`crate::AsyncFileStorage::open_dir`]) and only when the track
    /// size is a multiple of 512 bytes; everything else — including a
    /// filesystem that rejects the flag, e.g. tmpfs — silently falls
    /// back to buffered I/O. Off by default: buffered I/O is the right
    /// choice whenever the page cache is allowed to help.
    pub direct_io: bool,
}

impl Default for IoEngineOpts {
    fn default() -> Self {
        Self {
            queue_depth: 64,
            prefetch_cache_blocks: 16,
            durability: Durability::None,
            trace: false,
            proc: 0,
            retry: RetryPolicy::default(),
            verify_checksums: false,
            obs: None,
            ignore_hints: false,
            direct_io: false,
        }
    }
}

/// Submit-time context attached to every queued op: trace sequencing
/// plus the `(superstep, phase)` active at submission. Per-drive FIFO
/// servicing means the submit-time superstep equals the count of
/// barrier flushes the worker has passed when it services the op, so
/// one stamp serves both the trace and deferred-error attribution.
#[derive(Debug, Clone, Copy, Default)]
struct Stamp {
    seq: u64,
    submit_us: u64,
    superstep: u64,
    phase: Phase,
}

/// One block of a vectored write: payload in a pooled buffer (returned
/// to the pool when the worker drops it after the physical write), with
/// its own trace stamp so per-block events are preserved.
struct WriteBlock {
    track: u64,
    data: PooledBlock,
    stamp: Stamp,
}

/// One result per submitted track, in submission order.
type ReadManyReply = Vec<io::Result<Vec<u8>>>;

/// One queued drive operation. `submit_us`/`seq` are 0 unless tracing.
///
/// Reads and writes travel as *vectored* per-drive submissions: a whole
/// scatter-gather list occupies **one** queue slot per drive, so a
/// compound-superstep transfer of hundreds of blocks can never deadlock
/// against the bounded queue, and the channel send/recv cost is paid per
/// drive instead of per block. Workers still service (and trace) each
/// block individually.
enum DriveOp {
    /// The reply carries one result per track, in submission order.
    ReadMany {
        tracks: Vec<(u64, Stamp)>,
        reply: Sender<ReadManyReply>,
    },
    WriteMany {
        blocks: Vec<WriteBlock>,
        /// Completion signal for [`ConcurrentStorage::submit_write_gather`]
        /// callers; plain write-behind passes `None`.
        done: Option<Sender<()>>,
    },
    Prefetch {
        track: u64,
        stamp: Stamp,
    },
    Flush {
        sync: bool,
        reply: Sender<io::Result<()>>,
        stamp: Stamp,
    },
    /// Reclaim a track range: drop cached blocks and checksums for the
    /// range, then forward to the inner backend. Travels through the
    /// FIFO queue, so every write submitted before the discard is
    /// applied first — no flush barrier needed.
    Discard {
        tracks: std::ops::Range<u64>,
        reply: Sender<io::Result<bool>>,
    },
}

/// Completion handle for an in-flight gather read started with
/// [`ConcurrentStorage::submit_read_gather`]. The transfers run on the
/// drive workers while the submitter computes; [`ConcurrentStorage::wait`]
/// blocks until every block has arrived and returns them in request
/// order. Dropping the ticket abandons the read (the workers still
/// service it; the replies go nowhere).
pub struct ReadTicket {
    addrs: Vec<TrackAddr>,
    replies: Vec<Option<Receiver<ReadManyReply>>>,
}

/// Completion handle for a gather write started with
/// [`ConcurrentStorage::submit_write_gather`]. The payload was copied
/// into pooled buffers at submit, so the caller's staging buffer is free
/// immediately; [`ConcurrentStorage::wait_write`] blocks until every
/// participating drive has applied its blocks and surfaces any deferred
/// write error.
pub struct WriteTicket {
    replies: Vec<Receiver<()>>,
}

/// A write-behind failure held until the next write or flush surfaces
/// it, with enough context to cross-reference the event trace. `kind`
/// preserves the fault taxonomy of the original error so `classify()`
/// downstream still distinguishes Transient/Corrupt/Permanent.
struct DeferredWriteError {
    drive: usize,
    track: u64,
    superstep: u64,
    kind: IoErrorKind,
    detail: String,
}

/// Deferred write-behind failures retained at most
/// [`MAX_DEFERRED_WRITE_ERRORS`] deep. A sick drive can fail every
/// queued write; keeping the list bounded caps memory while the
/// `dropped` count (and the engine-wide counter behind
/// [`ConcurrentStorage::deferred_drop_counter`]) preserves how many
/// failures the bound discarded — nothing is silently lost anymore.
#[derive(Default)]
struct DeferredErrors {
    errors: Vec<DeferredWriteError>,
    /// Failures discarded because `errors` was already full, since the
    /// last [`ConcurrentStorage::take_write_err`].
    dropped: u64,
}

/// Bound on retained deferred write errors (per engine, across drives).
pub const MAX_DEFERRED_WRITE_ERRORS: usize = 16;

/// [`TrackStorage`] that services each drive from its own worker thread.
///
/// Layers over any inner `TrackStorage` (normally a [`FileStorage`]; the
/// tests also wrap instrumented and in-memory backends). Drop-in behind
/// `DiskArray::with_storage` — logical I/O accounting is unchanged
/// because the accounting layer sits above the storage trait.
pub struct ConcurrentStorage {
    inner: Arc<dyn TrackStorage>,
    queues: Vec<Sender<DriveOp>>,
    workers: Vec<JoinHandle<()>>,
    write_err: Arc<Mutex<DeferredErrors>>,
    durability: Durability,
    trace: Option<TraceHandle>,
    proc: usize,
    /// Pool recycling write-behind payload buffers between the engine
    /// (which copies the caller's bytes in at submit) and the drive
    /// workers (which return the buffer on drop after the physical
    /// write) — the submit-side copy is the only one on the write path.
    pool: BlockPool,
    /// Per-drive count of prefetch hints dropped on a full queue.
    prefetch_drops: Arc<Vec<AtomicU64>>,
    obs: Option<Obs>,
    /// This proc's phase cell, resolved once so the submit path reads
    /// the runner-published `(superstep, phase)` with one atomic load.
    phase: Option<Arc<PhaseCell>>,
    /// Barrier flushes completed — the engine's own superstep counter,
    /// used to stamp ops when no runner is publishing phases.
    superstep: AtomicU64,
    /// Transient-fault retries across all drive workers. Registered as
    /// `cgmio_io_retries_total{proc}` when `obs` is set, detached (but
    /// still counting, for run reports) otherwise.
    retries: Counter,
    /// Per-drive `cgmio_io_prefetch_dropped_total` handles (detached
    /// when `obs` is unset).
    prefetch_drop_metrics: Vec<Counter>,
    /// Deferred write errors discarded by the bounded retained list,
    /// across all drive workers for the engine's lifetime. Registered
    /// as `cgmio_io_deferred_write_errors_dropped_total{proc}` when
    /// `obs` is set, detached (still counting) otherwise.
    deferred_drops: Counter,
    /// In-flight reads submitted through the type-erased
    /// [`TrackStorage::read_scatter_submit`] entry point, keyed by the
    /// opaque ticket ids it hands out.
    pending_reads: Mutex<HashMap<u64, ReadTicket>>,
    /// Ticket-id source for `pending_reads` (ids start at 1; 0 is the
    /// synchronous backends' "no ticket" value).
    next_ticket: AtomicU64,
    /// Discard prefetch hints (see [`IoEngineOpts::ignore_hints`]).
    ignore_hints: bool,
    /// Live prefetch-cache capacity in blocks, shared with every drive
    /// worker. Runtime-adjustable (see
    /// [`ConcurrentStorage::set_prefetch_cache_blocks`]) so a tuner can
    /// resize the window between supersteps without rebuilding the
    /// engine. Capacity only affects the hint cache, never logical I/O
    /// accounting.
    prefetch_cap: Arc<AtomicUsize>,
}

impl ConcurrentStorage {
    /// Spin up one worker per drive over an existing backend.
    pub fn new(inner: Arc<dyn TrackStorage>, num_disks: usize, opts: IoEngineOpts) -> Self {
        let write_err = Arc::new(Mutex::new(DeferredErrors::default()));
        let trace = opts.trace.then(TraceHandle::new);
        let retries = match &opts.obs {
            Some(o) => {
                o.metrics().counter("cgmio_io_retries_total", &[("proc", opts.proc.to_string())])
            }
            None => Counter::detached(),
        };
        let deferred_drops = match &opts.obs {
            Some(o) => o.metrics().counter(
                "cgmio_io_deferred_write_errors_dropped_total",
                &[("proc", opts.proc.to_string())],
            ),
            None => Counter::detached(),
        };
        let prefetch_drop_metrics: Vec<Counter> = (0..num_disks)
            .map(|drive| match &opts.obs {
                Some(o) => o.metrics().counter(
                    "cgmio_io_prefetch_dropped_total",
                    &[("proc", opts.proc.to_string()), ("drive", drive.to_string())],
                ),
                None => Counter::detached(),
            })
            .collect();
        let prefetch_cap = Arc::new(AtomicUsize::new(opts.prefetch_cache_blocks));
        let mut queues = Vec::with_capacity(num_disks);
        let mut workers = Vec::with_capacity(num_disks);
        for drive in 0..num_disks {
            let (tx, rx) = bounded(opts.queue_depth);
            let ctx = WorkerCtx {
                drive,
                proc: opts.proc,
                inner: inner.clone(),
                write_err: write_err.clone(),
                trace: trace.clone(),
                cache_cap: prefetch_cap.clone(),
                retry: opts.retry,
                verify: opts.verify_checksums,
                obs: opts.obs.clone(),
                metrics: opts.obs.as_ref().map(|o| DriveObs::new(o, opts.proc, drive)),
                retries: retries.clone(),
                deferred_drops: deferred_drops.clone(),
            };
            workers.push(
                std::thread::Builder::new()
                    .name(format!("cgmio-io-d{drive}"))
                    .spawn(move || ctx.run(rx))
                    .expect("spawn drive worker"),
            );
            queues.push(tx);
        }
        Self {
            inner,
            queues,
            workers,
            write_err,
            durability: opts.durability,
            trace,
            proc: opts.proc,
            pool: BlockPool::default(),
            prefetch_drops: Arc::new((0..num_disks).map(|_| AtomicU64::new(0)).collect()),
            phase: opts.obs.as_ref().map(|o| o.phase_cell(opts.proc as u64)),
            obs: opts.obs,
            superstep: AtomicU64::new(0),
            retries,
            prefetch_drop_metrics,
            deferred_drops,
            pending_reads: Mutex::new(HashMap::new()),
            next_ticket: AtomicU64::new(1),
            ignore_hints: opts.ignore_hints,
            prefetch_cap,
        }
    }

    /// Open (or create) file-backed drives in `dir` and run them through
    /// the concurrent engine.
    pub fn open_dir(dir: &Path, geom: DiskGeometry, opts: IoEngineOpts) -> io::Result<Self> {
        let fs = FileStorage::open(dir, geom)?;
        Ok(Self::new(Arc::new(fs), geom.num_disks, opts))
    }

    /// Handle onto the event trace, if `opts.trace` was set. Clone it
    /// before moving the storage into a `DiskArray`.
    pub fn trace_handle(&self) -> Option<TraceHandle> {
        self.trace.clone()
    }

    /// Handle onto the engine's transient-retry counter. Counts across
    /// all drive workers for the engine's whole lifetime, whether or
    /// not an observability handle is attached.
    pub fn retry_counter(&self) -> Counter {
        self.retries.clone()
    }

    /// Handle onto the count of deferred write errors the bounded
    /// retained list discarded (see [`MAX_DEFERRED_WRITE_ERRORS`]).
    /// Counts across all drive workers for the engine's whole lifetime,
    /// whether or not an observability handle is attached.
    pub fn deferred_drop_counter(&self) -> Counter {
        self.deferred_drops.clone()
    }

    /// Current prefetch-cache capacity, in blocks per drive worker.
    pub fn prefetch_cache_blocks(&self) -> usize {
        self.prefetch_cap.load(Ordering::Relaxed)
    }

    /// Resize the per-drive prefetch cache at runtime. Takes effect on
    /// the next hint each worker services: growing admits more blocks,
    /// shrinking evicts FIFO down to the new bound (0 disables caching
    /// of new hints). Never touches logical I/O accounting — only the
    /// hint cache's hit rate changes.
    pub fn set_prefetch_cache_blocks(&self, blocks: usize) {
        self.prefetch_cap.store(blocks, Ordering::Relaxed);
    }

    /// Shared handle onto the live prefetch-cache capacity. Clone it
    /// before moving the storage into a `DiskArray` so a runtime tuner
    /// can keep adjusting the window (same pattern as
    /// [`ConcurrentStorage::trace_handle`]).
    pub fn prefetch_cap_handle(&self) -> Arc<AtomicUsize> {
        self.prefetch_cap.clone()
    }

    fn stamp(&self) -> Stamp {
        let (seq, submit_us) = match &self.trace {
            Some(t) => (t.next_seq(), t.now_us()),
            None => (0, self.obs.as_ref().map(|o| o.now_us()).unwrap_or(0)),
        };
        // Prefer the runner-published (superstep, phase); fall back to
        // the engine's own barrier count when nothing is published.
        let (superstep, phase) = match self.phase.as_ref().map(|c| c.get()) {
            Some((step, phase)) if phase != Phase::None => (step, phase),
            _ => (self.superstep.load(Ordering::Relaxed), Phase::None),
        };
        Stamp { seq, submit_us, superstep, phase }
    }

    /// Surface (and clear) deferred write-behind errors as a typed
    /// [`FaultError`] so `classify()` sees the original taxonomy class; a
    /// permanent fault surfaced here stays permanent downstream. The
    /// first failure carries the typed payload; any further retained or
    /// bound-dropped failures are summarised in the detail so multiple
    /// failures in one superstep are no longer silently collapsed.
    fn take_write_err(&self) -> io::Result<()> {
        let (mut errors, dropped) = {
            let mut g = self.write_err.lock().unwrap();
            (std::mem::take(&mut g.errors), std::mem::take(&mut g.dropped))
        };
        if errors.is_empty() {
            return Ok(());
        }
        let more = errors.len() as u64 - 1 + dropped;
        let suffix =
            if more > 0 { format!(" (+{more} more deferred write errors)") } else { String::new() };
        let d = errors.remove(0);
        Err(FaultError {
            kind: d.kind,
            disk: d.drive,
            track: d.track,
            detail: format!(
                "deferred write failed in superstep {}: {}{suffix}",
                d.superstep, d.detail
            ),
        }
        .into_io_error())
    }

    fn submit(&self, drive: usize, op: DriveOp) -> io::Result<()> {
        self.queues[drive]
            .send(op)
            .map_err(|_| io::Error::other(format!("drive {drive} worker is gone")))
    }

    /// Prefetch hints dropped per drive so far (full submission queue).
    pub fn prefetch_drop_counts(&self) -> Vec<u64> {
        self.prefetch_drops.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }

    /// Start a gather read without waiting for it: group the scatter
    /// list per drive, submit one vectored read per drive, and return a
    /// [`ReadTicket`] immediately. The drive workers fetch the blocks
    /// while the caller computes; redeem the ticket with
    /// [`ConcurrentStorage::wait`]. This is the pipelined runners' demand
    /// pre-read — unlike [`TrackStorage::prefetch`] the read runs to
    /// completion, is never dropped, and its result is delivered directly
    /// instead of through the bounded prefetch cache.
    pub fn submit_read_gather(&self, addrs: &[TrackAddr]) -> io::Result<ReadTicket> {
        let nd = self.queues.len();
        let mut groups: Vec<Vec<(u64, Stamp)>> = vec![Vec::new(); nd];
        for a in addrs {
            groups[a.disk].push((a.track, self.stamp()));
        }
        let mut replies: Vec<Option<Receiver<ReadManyReply>>> = (0..nd).map(|_| None).collect();
        for (drive, tracks) in groups.into_iter().enumerate() {
            if tracks.is_empty() {
                continue;
            }
            let (tx, rx) = bounded(1);
            self.submit(drive, DriveOp::ReadMany { tracks, reply: tx })?;
            replies[drive] = Some(rx);
        }
        Ok(ReadTicket { addrs: addrs.to_vec(), replies })
    }

    /// Block until every transfer of `ticket` has completed and return
    /// the blocks in the submission's request order. Time spent blocked
    /// here (the submitter out-ran the drives) is recorded into the
    /// `cgmio_pipeline_stall_us` histogram when observability is on.
    pub fn wait(&self, ticket: ReadTicket) -> io::Result<Vec<Vec<u8>>> {
        let stall_from = self.obs.as_ref().map(|o| o.now_us());
        let nd = self.queues.len();
        let mut per_drive: Vec<VecDeque<io::Result<Vec<u8>>>> =
            (0..nd).map(|_| VecDeque::new()).collect();
        for (drive, rx) in ticket.replies.into_iter().enumerate() {
            if let Some(rx) = rx {
                per_drive[drive] =
                    rx.recv().map_err(|_| io::Error::other("drive worker died mid-read"))?.into();
            }
        }
        if let (Some(obs), Some(t0)) = (&self.obs, stall_from) {
            obs.metrics()
                .histogram("cgmio_pipeline_stall_us", &[("proc", self.proc.to_string())])
                .observe(obs.now_us().saturating_sub(t0));
        }
        ticket
            .addrs
            .iter()
            .map(|a| per_drive[a.disk].pop_front().expect("one result per submitted track"))
            .collect()
    }

    /// Start a gather write without waiting for it: the payloads are
    /// copied into pooled buffers and queued (exactly like the
    /// write-behind path), and the returned [`WriteTicket`] additionally
    /// carries per-drive completion signals. Redeem it with
    /// [`ConcurrentStorage::wait_write`] — or drop it and let the
    /// superstep flush be the barrier, as the runners do.
    pub fn submit_write_gather(&self, writes: &[(TrackAddr, &[u8])]) -> io::Result<WriteTicket> {
        self.take_write_err()?;
        let nd = self.queues.len();
        let mut groups: Vec<Vec<WriteBlock>> = (0..nd).map(|_| Vec::new()).collect();
        for (a, data) in writes {
            let stamp = self.stamp();
            let mut block = self.pool.checkout(data.len());
            block.copy_from_slice(data);
            groups[a.disk].push(WriteBlock { track: a.track, data: block, stamp });
        }
        let mut replies = Vec::new();
        for (drive, blocks) in groups.into_iter().enumerate() {
            if !blocks.is_empty() {
                let (tx, rx) = bounded(1);
                self.submit(drive, DriveOp::WriteMany { blocks, done: Some(tx) })?;
                replies.push(rx);
            }
        }
        Ok(WriteTicket { replies })
    }

    /// Block until every block of `ticket` has been applied by its drive
    /// worker, then surface any deferred write error.
    pub fn wait_write(&self, ticket: WriteTicket) -> io::Result<()> {
        for rx in ticket.replies {
            rx.recv().map_err(|_| io::Error::other("drive worker died mid-write"))?;
        }
        self.take_write_err()
    }

    /// Blocking gather read: submit, then immediately wait. The order of
    /// per-drive submissions and physical transfers is identical to the
    /// split-phase path, so pipelined and serial executions see the same
    /// per-track operation sequences.
    fn read_scatter_owned(&self, addrs: &[TrackAddr]) -> io::Result<Vec<Vec<u8>>> {
        self.wait(self.submit_read_gather(addrs)?)
    }
}

impl TrackStorage for ConcurrentStorage {
    fn read_track(&self, disk: usize, track: u64) -> io::Result<Vec<u8>> {
        self.read_batch(&[TrackAddr::new(disk, track)]).map(|mut v| v.pop().unwrap())
    }

    fn write_track(&self, disk: usize, track: u64, data: &[u8]) -> io::Result<()> {
        self.write_batch(&[(TrackAddr::new(disk, track), data)])
    }

    /// Submit every read of the (legal) operation before awaiting any
    /// reply: the transfers overlap across drives.
    fn read_batch(&self, addrs: &[TrackAddr]) -> io::Result<Vec<Vec<u8>>> {
        self.read_scatter_owned(addrs)
    }

    /// Vectored scatter read: one submission per participating drive,
    /// any number of tracks per drive, blocks handed to `f` in request
    /// order.
    fn read_scatter_with(
        &self,
        addrs: &[TrackAddr],
        f: &mut dyn FnMut(usize, &[u8]),
    ) -> io::Result<()> {
        for (i, block) in self.read_scatter_owned(addrs)?.into_iter().enumerate() {
            f(i, &block);
        }
        Ok(())
    }

    /// Write-behind: returns once all blocks are queued. Errors from
    /// earlier deferred writes surface here (or at flush).
    fn write_batch(&self, writes: &[(TrackAddr, &[u8])]) -> io::Result<()> {
        self.write_scatter(writes)
    }

    /// Vectored write-behind: the whole scatter list becomes one
    /// submission per participating drive. Payloads are copied once into
    /// pooled buffers the workers recycle; this is the only copy between
    /// the caller's staging buffer and the inner storage.
    fn write_scatter(&self, writes: &[(TrackAddr, &[u8])]) -> io::Result<()> {
        self.take_write_err()?;
        let nd = self.queues.len();
        let mut groups: Vec<Vec<WriteBlock>> = (0..nd).map(|_| Vec::new()).collect();
        for (a, data) in writes {
            let stamp = self.stamp();
            let mut block = self.pool.checkout(data.len());
            block.copy_from_slice(data);
            groups[a.disk].push(WriteBlock { track: a.track, data: block, stamp });
        }
        for (drive, blocks) in groups.into_iter().enumerate() {
            if !blocks.is_empty() {
                self.submit(drive, DriveOp::WriteMany { blocks, done: None })?;
            }
        }
        Ok(())
    }

    /// Split-phase gather read behind the type-erased storage trait:
    /// parks a [`ReadTicket`] in the engine's pending map and hands back
    /// its id, so `DiskArray` can charge the cost model at submit time
    /// and redeem the ticket later via
    /// [`TrackStorage::read_scatter_wait`].
    fn read_scatter_submit(&self, addrs: &[TrackAddr]) -> io::Result<u64> {
        let ticket = self.submit_read_gather(addrs)?;
        let id = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        self.pending_reads.lock().unwrap().insert(id, ticket);
        Ok(id)
    }

    fn read_scatter_wait(
        &self,
        ticket: u64,
        _addrs: &[TrackAddr],
        f: &mut dyn FnMut(usize, &[u8]),
    ) -> io::Result<()> {
        let pending = self
            .pending_reads
            .lock()
            .unwrap()
            .remove(&ticket)
            .ok_or_else(|| io::Error::other("unknown or already-redeemed read ticket"))?;
        for (i, block) in self.wait(pending)?.into_iter().enumerate() {
            f(i, &block);
        }
        Ok(())
    }

    /// Best-effort hint; a full queue drops it rather than blocking —
    /// but a drop is counted per drive and traced, so prefetch
    /// effectiveness analysis sees the hints that went missing.
    /// Discarded wholesale under [`IoEngineOpts::ignore_hints`].
    fn prefetch(&self, addrs: &[TrackAddr]) {
        if self.ignore_hints {
            return;
        }
        for a in addrs {
            let stamp = self.stamp();
            match self.queues[a.disk].try_send(DriveOp::Prefetch { track: a.track, stamp }) {
                Ok(()) | Err(TrySendError::Disconnected(_)) => {}
                Err(TrySendError::Full(_)) => {
                    self.prefetch_drops[a.disk].fetch_add(1, Ordering::Relaxed);
                    self.prefetch_drop_metrics[a.disk].inc();
                    if let Some(t) = &self.trace {
                        let now = t.now_us();
                        t.record(TraceEvent {
                            seq: stamp.seq,
                            proc: self.proc,
                            drive: a.disk,
                            kind: OpKind::PrefetchDropped,
                            track: a.track,
                            bytes: 0,
                            queue_depth: self.queues[a.disk].len(),
                            submit_us: stamp.submit_us,
                            start_us: now,
                            end_us: now,
                            cache_hit: false,
                            retries: 0,
                            superstep: stamp.superstep,
                            phase: stamp.phase,
                        });
                    }
                }
            }
        }
    }

    /// Drain every drive's queue (in parallel), fsync when the
    /// durability mode demands it, and surface deferred write errors.
    fn flush(&self, sync: bool) -> io::Result<()> {
        let fsync = sync || self.durability == Durability::SyncPerSuperstep;
        let mut replies = Vec::with_capacity(self.queues.len());
        for drive in 0..self.queues.len() {
            let (tx, rx) = bounded(1);
            let stamp = self.stamp();
            self.submit(drive, DriveOp::Flush { sync: fsync, reply: tx, stamp })?;
            replies.push(rx);
        }
        // The flush ops above belong to the superstep they close; ops
        // submitted after this barrier are stamped with the next one.
        self.superstep.fetch_add(1, Ordering::Relaxed);
        for rx in replies {
            rx.recv().map_err(|_| io::Error::other("drive worker died mid-flush"))??;
        }
        self.take_write_err()
    }

    fn sync_disk(&self, disk: usize) -> io::Result<()> {
        let (tx, rx) = bounded(1);
        let stamp = self.stamp();
        self.submit(disk, DriveOp::Flush { sync: true, reply: tx, stamp })?;
        rx.recv().map_err(|_| io::Error::other("drive worker died mid-sync"))?
    }

    /// Reclamation runs on the drive worker behind every already-queued
    /// write (FIFO coherence, like reads), and the worker drops its
    /// prefetch-cache and checksum entries for the range before
    /// forwarding to the inner backend — so a later tenant of the same
    /// tracks can never be served a stale cached block.
    fn discard(&self, disk: usize, tracks: std::ops::Range<u64>) -> io::Result<bool> {
        let (tx, rx) = bounded(1);
        self.submit(disk, DriveOp::Discard { tracks, reply: tx })?;
        rx.recv().map_err(|_| io::Error::other("drive worker died mid-discard"))?
    }

    fn tracks_used(&self) -> Vec<u64> {
        // Drain pending writes so file lengths are current; a deferred
        // error stays sticky for the next write/flush to report.
        let _ = self.flush(false);
        self.inner.tracks_used()
    }
}

impl Drop for ConcurrentStorage {
    /// Graceful shutdown: close the queues, let every worker drain its
    /// remaining submitted ops, and join them.
    fn drop(&mut self) {
        self.queues.clear();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Per-drive metric handles, resolved once at worker spawn so the hot
/// path never touches the registry map.
struct DriveObs {
    /// Service-time histograms indexed by [`DriveObs::kind_idx`].
    service_us: [Histogram; 4],
    /// Queue-wait histograms (submit → service start), same indexing.
    /// Service time says how slow the medium is; queue wait says how far
    /// behind the drive is — the pipeline-depth tuning signal.
    queue_wait_us: [Histogram; 4],
    /// Payload bytes moved, same indexing (flush always moves 0 bytes
    /// and shares the reads slot harmlessly).
    bytes: [Counter; 4],
    queue_depth: Gauge,
    cache_hits: Counter,
}

impl DriveObs {
    fn new(obs: &Obs, proc: usize, drive: usize) -> Self {
        let m = obs.metrics();
        let kinds = ["read", "write", "prefetch", "flush"];
        let labels = |kind: &str| {
            [("proc", proc.to_string()), ("drive", drive.to_string()), ("kind", kind.to_string())]
        };
        Self {
            service_us: kinds.map(|k| m.histogram("cgmio_io_service_us", &labels(k))),
            queue_wait_us: kinds.map(|k| m.histogram("cgmio_io_queue_wait_us", &labels(k))),
            bytes: kinds.map(|k| m.counter("cgmio_io_bytes_total", &labels(k))),
            queue_depth: m.gauge(
                "cgmio_io_queue_depth",
                &[("proc", proc.to_string()), ("drive", drive.to_string())],
            ),
            cache_hits: m.counter(
                "cgmio_io_cache_hits_total",
                &[("proc", proc.to_string()), ("drive", drive.to_string())],
            ),
        }
    }

    fn kind_idx(kind: OpKind) -> usize {
        match kind {
            OpKind::Read => 0,
            OpKind::Write | OpKind::WriteErrorDropped => 1,
            OpKind::Prefetch | OpKind::PrefetchDropped => 2,
            OpKind::Flush => 3,
        }
    }
}

/// Per-drive worker state.
struct WorkerCtx {
    drive: usize,
    proc: usize,
    inner: Arc<dyn TrackStorage>,
    write_err: Arc<Mutex<DeferredErrors>>,
    trace: Option<TraceHandle>,
    /// Live prefetch-cache capacity, shared with the owning engine so a
    /// tuner can resize the window between supersteps.
    cache_cap: Arc<AtomicUsize>,
    retry: RetryPolicy,
    verify: bool,
    obs: Option<Obs>,
    metrics: Option<DriveObs>,
    retries: Counter,
    deferred_drops: Counter,
}

impl WorkerCtx {
    fn run(self, rx: Receiver<DriveOp>) {
        // Prefetch cache: worker-local, so no locks. FIFO eviction.
        let mut cache: HashMap<u64, Vec<u8>> = HashMap::new();
        let mut order: VecDeque<u64> = VecDeque::new();
        // Expected FNV checksum per track this engine has written
        // (worker-local: this worker services every op for its drive).
        let mut sums: HashMap<u64, u64> = HashMap::new();
        // recv() drains already-queued ops even after the engine dropped
        // its senders, then errors out — that's the graceful shutdown.
        while let Ok(op) = rx.recv() {
            let depth = rx.len();
            match op {
                DriveOp::ReadMany { tracks, reply } => {
                    let mut out = Vec::with_capacity(tracks.len());
                    for (track, stamp) in tracks {
                        let start_us = self.now_us();
                        let (res, hit, retries) = match cache.get(&track) {
                            Some(data) => (Ok(data.clone()), true, 0),
                            None => {
                                let (res, retries) = self.read_verified(track, &sums);
                                (res, false, retries)
                            }
                        };
                        let bytes = res.as_ref().map(|d| d.len()).unwrap_or(0);
                        // Record before replying so a caller that
                        // observed the result also observes the event.
                        self.record(
                            OpKind::Read,
                            track,
                            bytes,
                            depth,
                            stamp,
                            start_us,
                            hit,
                            retries,
                        );
                        out.push(res);
                    }
                    // The engine may already have given up on this read;
                    // a closed reply channel is not an error.
                    let _ = reply.send(out);
                }
                DriveOp::WriteMany { blocks, done } => {
                    for WriteBlock { track, data, stamp } in blocks {
                        let start_us = self.now_us();
                        // FIFO order makes later reads see this write;
                        // the cache entry is stale either way — drop it.
                        if cache.remove(&track).is_some() {
                            order.retain(|&t| t != track);
                        }
                        let bytes = data.len();
                        let (res, retries) =
                            self.retry.run(|| self.inner.write_track(self.drive, track, &data));
                        match res {
                            Ok(()) => {
                                if self.verify {
                                    sums.insert(track, track_checksum(&data));
                                }
                            }
                            Err(e) => {
                                let mut derr = self.write_err.lock().unwrap();
                                if derr.errors.len() < MAX_DEFERRED_WRITE_ERRORS {
                                    derr.errors.push(DeferredWriteError {
                                        drive: self.drive,
                                        track,
                                        superstep: stamp.superstep,
                                        kind: classify(&e),
                                        detail: e.to_string(),
                                    });
                                } else {
                                    derr.dropped += 1;
                                    drop(derr);
                                    self.deferred_drops.inc();
                                    if let Some(t) = &self.trace {
                                        let now = t.now_us();
                                        t.record(TraceEvent {
                                            seq: stamp.seq,
                                            proc: self.proc,
                                            drive: self.drive,
                                            kind: OpKind::WriteErrorDropped,
                                            track,
                                            bytes: 0,
                                            queue_depth: depth,
                                            submit_us: stamp.submit_us,
                                            start_us: now,
                                            end_us: now,
                                            cache_hit: false,
                                            retries: 0,
                                            superstep: stamp.superstep,
                                            phase: stamp.phase,
                                        });
                                    }
                                }
                            }
                        }
                        self.record(
                            OpKind::Write,
                            track,
                            bytes,
                            depth,
                            stamp,
                            start_us,
                            false,
                            retries,
                        );
                        // `data` (a PooledBlock) drops here, returning
                        // the buffer to the engine's pool.
                    }
                    // Completion signal for submit_write_gather callers;
                    // an abandoned ticket is not an error.
                    if let Some(tx) = done {
                        let _ = tx.send(());
                    }
                }
                DriveOp::Prefetch { track, stamp } => {
                    let start_us = self.now_us();
                    let hit = cache.contains_key(&track);
                    let mut bytes = 0;
                    let cap = self.cache_cap.load(Ordering::Relaxed);
                    if !hit && cap > 0 {
                        // Failed prefetches are dropped (no retry): the
                        // demand read retries and reports any real error.
                        if let Ok(data) = self.inner.read_track(self.drive, track) {
                            if !self.verify || self.checksum_ok(track, &data, &sums) {
                                bytes = data.len();
                                // `while`, not `if`: after a runtime
                                // shrink the cache may be over the new
                                // bound by more than one block.
                                while order.len() >= cap {
                                    if let Some(old) = order.pop_front() {
                                        cache.remove(&old);
                                    } else {
                                        break;
                                    }
                                }
                                cache.insert(track, data);
                                order.push_back(track);
                            }
                        }
                    }
                    self.record(OpKind::Prefetch, track, bytes, depth, stamp, start_us, hit, 0);
                }
                DriveOp::Flush { sync, reply, stamp } => {
                    let start_us = self.now_us();
                    let res = if sync { self.inner.sync_disk(self.drive) } else { Ok(()) };
                    self.record(OpKind::Flush, 0, 0, depth, stamp, start_us, false, 0);
                    let _ = reply.send(res);
                }
                DriveOp::Discard { tracks, reply } => {
                    cache.retain(|t, _| !tracks.contains(t));
                    order.retain(|t| !tracks.contains(t));
                    sums.retain(|t, _| !tracks.contains(t));
                    let _ = reply.send(self.inner.discard(self.drive, tracks));
                }
            }
        }
    }

    /// Demand read with transient-fault retries and (optional) checksum
    /// verification. A mismatch is a [`IoErrorKind::Corrupt`] fault and
    /// is *not* retried — a re-read returns the same bytes.
    fn read_verified(&self, track: u64, sums: &HashMap<u64, u64>) -> (io::Result<Vec<u8>>, u32) {
        self.retry.run(|| {
            let data = self.inner.read_track(self.drive, track)?;
            if self.verify && !self.checksum_ok(track, &data, sums) {
                return Err(FaultError {
                    kind: IoErrorKind::Corrupt,
                    disk: self.drive,
                    track,
                    detail: "track checksum mismatch on read".into(),
                }
                .into_io_error());
            }
            Ok(data)
        })
    }

    /// Does `data` match the checksum recorded for `track`? Tracks this
    /// engine never wrote have no expectation and always pass.
    fn checksum_ok(&self, track: u64, data: &[u8], sums: &HashMap<u64, u64>) -> bool {
        sums.get(&track).is_none_or(|&want| track_checksum(data) == want)
    }

    /// Worker timebase: the trace epoch when tracing, else the obs
    /// epoch (so service histograms work with tracing off), else 0.
    fn now_us(&self) -> u64 {
        match (&self.trace, &self.obs) {
            (Some(t), _) => t.now_us(),
            (None, Some(o)) => o.now_us(),
            (None, None) => 0,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn record(
        &self,
        kind: OpKind,
        track: u64,
        bytes: usize,
        queue_depth: usize,
        stamp: Stamp,
        start_us: u64,
        cache_hit: bool,
        retries: u32,
    ) {
        let end_us = self.now_us();
        if retries > 0 {
            self.retries.add(retries as u64);
        }
        if let Some(m) = &self.metrics {
            let i = DriveObs::kind_idx(kind);
            m.service_us[i].observe(end_us.saturating_sub(start_us));
            m.queue_wait_us[i].observe(start_us.saturating_sub(stamp.submit_us));
            m.bytes[i].add(bytes as u64);
            m.queue_depth.set(queue_depth as i64);
            if cache_hit {
                m.cache_hits.inc();
            }
        }
        if let Some(t) = &self.trace {
            t.record(TraceEvent {
                seq: stamp.seq,
                proc: self.proc,
                drive: self.drive,
                kind,
                track,
                bytes,
                queue_depth,
                submit_us: stamp.submit_us,
                start_us,
                end_us,
                cache_hit,
                retries,
                superstep: stamp.superstep,
                phase: stamp.phase,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgmio_pdm::{DiskArray, MemStorage};

    fn engine(d: usize, bb: usize, opts: IoEngineOpts) -> ConcurrentStorage {
        let geom = DiskGeometry::new(d, bb);
        ConcurrentStorage::new(Arc::new(MemStorage::new(geom)), d, opts)
    }

    #[test]
    fn roundtrip_through_workers() {
        let s = engine(2, 4, IoEngineOpts::default());
        s.write_batch(&[(TrackAddr::new(0, 0), &[1u8, 2][..]), (TrackAddr::new(1, 7), &[3u8][..])])
            .unwrap();
        let r = s.read_batch(&[TrackAddr::new(0, 0), TrackAddr::new(1, 7)]).unwrap();
        assert_eq!(r, vec![vec![1, 2, 0, 0], vec![3, 0, 0, 0]]);
    }

    #[test]
    fn read_after_write_behind_is_coherent() {
        let s = engine(1, 2, IoEngineOpts::default());
        // Hammer the same track: the demand read must always see the
        // write submitted just before it (per-drive FIFO ordering).
        for i in 0..200u8 {
            s.write_track(0, 0, &[i]).unwrap();
            assert_eq!(s.read_track(0, 0).unwrap(), vec![i, 0]);
        }
    }

    #[test]
    fn prefetch_hits_cache_and_write_invalidates() {
        let opts = IoEngineOpts { trace: true, ..Default::default() };
        let s = engine(1, 2, opts);
        let t = s.trace_handle().unwrap();
        s.write_track(0, 3, &[9]).unwrap();
        s.prefetch(&[TrackAddr::new(0, 3)]);
        s.flush(false).unwrap();
        assert_eq!(s.read_track(0, 3).unwrap(), vec![9, 0]);
        // write invalidates; next read must see fresh data, not cache
        s.write_track(0, 3, &[8]).unwrap();
        assert_eq!(s.read_track(0, 3).unwrap(), vec![8, 0]);
        let evs = t.snapshot();
        let hits: Vec<bool> =
            evs.iter().filter(|e| e.kind == OpKind::Read).map(|e| e.cache_hit).collect();
        assert_eq!(hits, vec![true, false], "first read hits prefetch, post-write read misses");
    }

    #[test]
    fn prefetch_cache_resizes_at_runtime() {
        let opts = IoEngineOpts { trace: true, ..Default::default() };
        let s = engine(1, 2, opts);
        let t = s.trace_handle().unwrap();
        for track in 0..4 {
            s.write_track(0, track, &[track as u8]).unwrap();
        }
        assert_eq!(s.prefetch_cache_blocks(), IoEngineOpts::default().prefetch_cache_blocks);
        // Capacity 0 disables caching of new hints: the demand read
        // that follows must miss.
        s.set_prefetch_cache_blocks(0);
        s.prefetch(&[TrackAddr::new(0, 0)]);
        s.flush(false).unwrap();
        assert_eq!(s.read_track(0, 0).unwrap(), vec![0, 0]);
        // Growing back re-enables it mid-flight, through the shared
        // handle a tuner would hold.
        let cap = s.prefetch_cap_handle();
        cap.store(4, Ordering::Relaxed);
        assert_eq!(s.prefetch_cache_blocks(), 4);
        s.prefetch(&[TrackAddr::new(0, 1)]);
        s.flush(false).unwrap();
        assert_eq!(s.read_track(0, 1).unwrap(), vec![1, 0]);
        let hits: Vec<bool> =
            t.snapshot().iter().filter(|e| e.kind == OpKind::Read).map(|e| e.cache_hit).collect();
        assert_eq!(hits, vec![false, true], "cap 0 read misses, post-resize read hits");
    }

    #[test]
    fn flush_drains_write_behind() {
        let geom = DiskGeometry::new(2, 4);
        let inner: Arc<dyn TrackStorage> = Arc::new(MemStorage::new(geom));
        let s = ConcurrentStorage::new(inner.clone(), 2, IoEngineOpts::default());
        for t in 0..50 {
            s.write_batch(&[
                (TrackAddr::new(0, t), &[1u8][..]),
                (TrackAddr::new(1, t), &[2u8][..]),
            ])
            .unwrap();
        }
        s.flush(false).unwrap();
        // After flush every submitted write has reached the inner store.
        assert_eq!(inner.tracks_used(), vec![50, 50]);
    }

    #[test]
    fn drop_drains_in_flight_writes() {
        let geom = DiskGeometry::new(1, 4);
        let inner: Arc<dyn TrackStorage> = Arc::new(MemStorage::new(geom));
        {
            let s = ConcurrentStorage::new(inner.clone(), 1, IoEngineOpts::default());
            for t in 0..30 {
                s.write_track(0, t, &[7]).unwrap();
            }
            // no flush: Drop must drain
        }
        assert_eq!(inner.tracks_used(), vec![30]);
        assert_eq!(inner.read_track(0, 29).unwrap(), vec![7, 0, 0, 0]);
    }

    #[test]
    fn deferred_write_error_is_sticky_until_surfaced() {
        struct FailingWrites;
        impl TrackStorage for FailingWrites {
            fn read_track(&self, _d: usize, _t: u64) -> io::Result<Vec<u8>> {
                Ok(vec![0; 4])
            }
            fn write_track(&self, _d: usize, _t: u64, _data: &[u8]) -> io::Result<()> {
                Err(io::Error::other("disk full"))
            }
            fn tracks_used(&self) -> Vec<u64> {
                vec![0]
            }
        }
        let s = ConcurrentStorage::new(Arc::new(FailingWrites), 1, IoEngineOpts::default());
        // submission itself succeeds (write-behind)...
        s.write_track(0, 0, &[1]).unwrap();
        // ...the failure surfaces at the flush barrier
        let e = s.flush(false).unwrap_err();
        assert!(e.to_string().contains("disk full"), "{e}");
        // and the engine recovers once reported
        s.flush(false).unwrap();
    }

    #[test]
    fn durability_mode_fsyncs_on_flush() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        struct CountSyncs(AtomicUsize);
        impl TrackStorage for CountSyncs {
            fn read_track(&self, _d: usize, _t: u64) -> io::Result<Vec<u8>> {
                Ok(vec![0; 4])
            }
            fn write_track(&self, _d: usize, _t: u64, _data: &[u8]) -> io::Result<()> {
                Ok(())
            }
            fn sync_disk(&self, _disk: usize) -> io::Result<()> {
                self.0.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }
            fn tracks_used(&self) -> Vec<u64> {
                vec![0, 0]
            }
        }
        let counted = Arc::new(CountSyncs(AtomicUsize::new(0)));
        let opts = IoEngineOpts { durability: Durability::SyncPerSuperstep, ..Default::default() };
        let s = ConcurrentStorage::new(counted.clone() as Arc<dyn TrackStorage>, 2, opts);
        s.flush(false).unwrap();
        assert_eq!(counted.0.load(Ordering::SeqCst), 2, "one fsync per drive");

        let lax = Arc::new(CountSyncs(AtomicUsize::new(0)));
        let s2 = ConcurrentStorage::new(
            lax.clone() as Arc<dyn TrackStorage>,
            2,
            IoEngineOpts::default(),
        );
        s2.flush(false).unwrap();
        assert_eq!(lax.0.load(Ordering::SeqCst), 0, "Durability::None never fsyncs");
    }

    #[test]
    fn deferred_error_names_drive_track_and_superstep() {
        struct FailingWrites;
        impl TrackStorage for FailingWrites {
            fn read_track(&self, _d: usize, _t: u64) -> io::Result<Vec<u8>> {
                Ok(vec![0; 4])
            }
            fn write_track(&self, _d: usize, _t: u64, _data: &[u8]) -> io::Result<()> {
                Err(io::Error::other("disk full"))
            }
            fn tracks_used(&self) -> Vec<u64> {
                vec![0]
            }
        }
        let s = ConcurrentStorage::new(Arc::new(FailingWrites), 1, IoEngineOpts::default());
        // Two clean barriers, then a write that fails in superstep 2.
        s.flush(false).unwrap();
        s.flush(false).unwrap();
        s.write_track(0, 7, &[1]).unwrap();
        let msg = s.flush(false).unwrap_err().to_string();
        assert!(msg.contains("disk 0"), "{msg}");
        assert!(msg.contains("track 7"), "{msg}");
        assert!(msg.contains("superstep 2"), "{msg}");
        assert!(msg.contains("disk full"), "{msg}");
    }

    #[test]
    fn deferred_errors_are_bounded_not_silently_dropped() {
        struct FailingWrites;
        impl TrackStorage for FailingWrites {
            fn read_track(&self, _d: usize, _t: u64) -> io::Result<Vec<u8>> {
                Ok(vec![0; 4])
            }
            fn write_track(&self, _d: usize, _t: u64, _data: &[u8]) -> io::Result<()> {
                Err(io::Error::other("disk full"))
            }
            fn tracks_used(&self) -> Vec<u64> {
                vec![0]
            }
        }
        let n_writes = MAX_DEFERRED_WRITE_ERRORS + 5;
        let opts = IoEngineOpts { trace: true, ..Default::default() };
        let s = ConcurrentStorage::new(Arc::new(FailingWrites), 1, opts);
        let trace = s.trace_handle().unwrap();
        let drops = s.deferred_drop_counter();
        // One scatter submission: separate write calls could surface the
        // first deferred error early (write paths are sticky-checked),
        // which would reset the episode mid-test.
        let writes: Vec<(TrackAddr, &[u8])> =
            (0..n_writes as u64).map(|t| (TrackAddr::new(0, t), &[1u8][..])).collect();
        s.write_scatter(&writes).unwrap();
        let msg = s.flush(false).unwrap_err().to_string();
        // The surfaced error enumerates how much failure it stands for:
        // the retained-but-unreported errors plus the dropped overflow.
        assert!(msg.contains(&format!("+{} more", n_writes - 1)), "{msg}");
        assert_eq!(drops.get(), 5, "overflow beyond the retained list is counted");
        let events = trace.drain();
        let dropped: Vec<_> =
            events.iter().filter(|e| e.kind == OpKind::WriteErrorDropped).collect();
        assert_eq!(dropped.len(), 5, "one trace event per discarded error");
        assert!(dropped.iter().all(|e| e.drive == 0 && e.bytes == 0));
        // Reporting clears the list *and* the episode: a later clean
        // barrier is not haunted by drop counts from the surfaced error.
        s.flush(false).unwrap();
        assert_eq!(drops.get(), 5);
    }

    #[test]
    fn deferred_write_error_keeps_fault_taxonomy() {
        use cgmio_pdm::classify;
        struct PermanentWrites;
        impl TrackStorage for PermanentWrites {
            fn read_track(&self, _d: usize, _t: u64) -> io::Result<Vec<u8>> {
                Ok(vec![0; 4])
            }
            fn write_track(&self, d: usize, t: u64, _data: &[u8]) -> io::Result<()> {
                Err(FaultError {
                    kind: IoErrorKind::Permanent,
                    disk: d,
                    track: t,
                    detail: "bad sector".into(),
                }
                .into_io_error())
            }
            fn tracks_used(&self) -> Vec<u64> {
                vec![0]
            }
        }
        let s = ConcurrentStorage::new(Arc::new(PermanentWrites), 1, IoEngineOpts::default());
        s.write_track(0, 3, &[1]).unwrap();
        let e = s.flush(false).unwrap_err();
        // the deferred path must NOT flatten the typed payload: a
        // permanent fault stays permanent for retry decisions downstream
        assert_eq!(classify(&e), IoErrorKind::Permanent);
        assert!(e.to_string().contains("bad sector"), "{e}");
        // untyped io::Errors classify as Permanent (do-not-retry) too
        struct UntypedFail;
        impl TrackStorage for UntypedFail {
            fn read_track(&self, _d: usize, _t: u64) -> io::Result<Vec<u8>> {
                Ok(vec![0; 4])
            }
            fn write_track(&self, _d: usize, _t: u64, _data: &[u8]) -> io::Result<()> {
                Err(io::Error::other("disk full"))
            }
            fn tracks_used(&self) -> Vec<u64> {
                vec![0]
            }
        }
        let s = ConcurrentStorage::new(Arc::new(UntypedFail), 1, IoEngineOpts::default());
        s.write_track(0, 0, &[1]).unwrap();
        let e = s.flush(false).unwrap_err();
        assert_eq!(classify(&e), classify(&io::Error::other("disk full")));
    }

    #[test]
    fn scatter_paths_roundtrip_many_blocks_per_drive() {
        let geom = DiskGeometry::new(2, 4);
        let inner: Arc<dyn TrackStorage> = Arc::new(MemStorage::new(geom));
        let s = ConcurrentStorage::new(inner.clone(), 2, IoEngineOpts::default());
        // 100 blocks on 2 drives — far beyond the queue depth; the
        // vectored submission must not deadlock.
        let writes: Vec<(TrackAddr, Vec<u8>)> = (0..100u64)
            .map(|i| (TrackAddr::new((i % 2) as usize, i / 2), vec![i as u8, 1, 2]))
            .collect();
        let borrowed: Vec<(TrackAddr, &[u8])> =
            writes.iter().map(|(a, d)| (*a, d.as_slice())).collect();
        s.write_scatter(&borrowed).unwrap();
        let addrs: Vec<TrackAddr> = writes.iter().map(|(a, _)| *a).collect();
        let mut got = Vec::new();
        s.read_scatter_with(&addrs, &mut |i, b| {
            assert_eq!(i, got.len());
            got.push(b.to_vec());
        })
        .unwrap();
        for (i, b) in got.iter().enumerate() {
            assert_eq!(b, &vec![i as u8, 1, 2, 0]);
        }
    }

    #[test]
    fn dropped_prefetch_hints_are_counted_and_traced() {
        use std::sync::atomic::AtomicBool;
        // An inner storage whose reads block until released: the drive
        // queue fills up behind the stuck op, so later hints must drop.
        struct Stuck(Arc<AtomicBool>);
        impl TrackStorage for Stuck {
            fn read_track(&self, _d: usize, _t: u64) -> io::Result<Vec<u8>> {
                while !self.0.load(Ordering::SeqCst) {
                    std::thread::yield_now();
                }
                Ok(vec![0; 4])
            }
            fn write_track(&self, _d: usize, _t: u64, _data: &[u8]) -> io::Result<()> {
                Ok(())
            }
            fn tracks_used(&self) -> Vec<u64> {
                vec![0]
            }
        }
        let release = Arc::new(AtomicBool::new(false));
        let opts = IoEngineOpts { queue_depth: 2, trace: true, ..Default::default() };
        let s = ConcurrentStorage::new(Arc::new(Stuck(release.clone())), 1, opts);
        let t = s.trace_handle().unwrap();
        // occupy the worker, then fill the 2-slot queue with hints
        s.prefetch(&[TrackAddr::new(0, 0)]);
        for i in 1..=20u64 {
            s.prefetch(&[TrackAddr::new(0, i)]);
        }
        let drops = s.prefetch_drop_counts()[0];
        assert!(drops > 0, "a 2-deep queue cannot absorb 20 hints");
        release.store(true, Ordering::SeqCst);
        s.flush(false).unwrap();
        let sum = crate::trace::summarize(&t.snapshot());
        assert_eq!(sum.prefetch_drops as u64, drops, "every drop is traced");
    }

    #[test]
    fn workers_retry_injected_transient_faults() {
        use cgmio_pdm::{FaultInjector, FaultPlan};
        let geom = DiskGeometry::new(1, 4);
        let inj = FaultInjector::new(MemStorage::new(geom), 1, FaultPlan::transient(5, 0.3));
        let opts = IoEngineOpts {
            trace: true,
            verify_checksums: true,
            retry: RetryPolicy { max_attempts: 12, base_backoff_us: 0 },
            ..Default::default()
        };
        let s = ConcurrentStorage::new(Arc::new(inj), 1, opts);
        let t = s.trace_handle().unwrap();
        for i in 0..40u64 {
            s.write_track(0, i, &[i as u8]).unwrap();
        }
        s.flush(false).unwrap();
        for i in 0..40u64 {
            assert_eq!(s.read_track(0, i).unwrap()[0], i as u8);
        }
        let sum = crate::trace::summarize(&t.snapshot());
        assert!(sum.retries > 0, "expected traced retries at a 30% fault rate");
    }

    #[test]
    fn torn_writes_heal_under_retry_and_pass_checksums() {
        use cgmio_pdm::{FaultInjector, FaultPlan};
        let geom = DiskGeometry::new(2, 8);
        let plan = FaultPlan { seed: 9, torn_write: 0.4, ..FaultPlan::default() };
        let inj = FaultInjector::new(MemStorage::new(geom), 2, plan);
        let opts = IoEngineOpts {
            verify_checksums: true,
            retry: RetryPolicy { max_attempts: 16, base_backoff_us: 0 },
            ..Default::default()
        };
        let s = ConcurrentStorage::new(Arc::new(inj), 2, opts);
        for i in 0..60u64 {
            s.write_track((i % 2) as usize, i, &[i as u8; 8]).unwrap();
        }
        s.flush(false).unwrap();
        // Checksum verification proves every torn write was healed by a
        // full rewrite before its data was read back.
        for i in 0..60u64 {
            assert_eq!(s.read_track((i % 2) as usize, i).unwrap(), vec![i as u8; 8]);
        }
    }

    #[test]
    fn checksum_mismatch_surfaces_as_corrupt() {
        use cgmio_pdm::{classify, IoErrorKind};
        struct BitRot(MemStorage);
        impl TrackStorage for BitRot {
            fn read_track(&self, d: usize, t: u64) -> io::Result<Vec<u8>> {
                let mut data = self.0.read_track(d, t)?;
                data[0] ^= 0xFF; // silent corruption
                Ok(data)
            }
            fn write_track(&self, d: usize, t: u64, data: &[u8]) -> io::Result<()> {
                self.0.write_track(d, t, data)
            }
            fn tracks_used(&self) -> Vec<u64> {
                self.0.tracks_used()
            }
        }
        let geom = DiskGeometry::new(1, 4);
        let opts = IoEngineOpts { verify_checksums: true, ..Default::default() };
        let s = ConcurrentStorage::new(Arc::new(BitRot(MemStorage::new(geom))), 1, opts);
        s.write_track(0, 0, &[1, 2, 3, 4]).unwrap();
        let e = s.read_track(0, 0).unwrap_err();
        assert_eq!(classify(&e), IoErrorKind::Corrupt);
        assert!(e.to_string().contains("checksum"), "{e}");
    }

    #[test]
    fn obs_records_metrics_and_stamps_trace_with_published_phase() {
        use cgmio_obs::SampleValue;
        let obs = Obs::new();
        let opts = IoEngineOpts { trace: true, obs: Some(obs.clone()), ..Default::default() };
        let s = engine(2, 4, opts);
        let t = s.trace_handle().unwrap();
        // Ops issued inside a span carry its (superstep, phase)...
        {
            let _span = obs.span(0, 3, Phase::MatrixWrite);
            s.write_batch(&[
                (TrackAddr::new(0, 0), &[1u8][..]),
                (TrackAddr::new(1, 0), &[2u8][..]),
            ])
            .unwrap();
        }
        // ...and ops outside any span fall back to the barrier count.
        s.flush(false).unwrap();
        s.read_track(0, 0).unwrap();
        let evs = t.snapshot();
        let w: Vec<_> = evs.iter().filter(|e| e.kind == OpKind::Write).collect();
        assert_eq!(w.len(), 2);
        assert!(w.iter().all(|e| e.superstep == 3 && e.phase == Phase::MatrixWrite));
        let r = evs.iter().find(|e| e.kind == OpKind::Read).unwrap();
        assert_eq!((r.superstep, r.phase), (1, Phase::None), "one barrier passed, no span");
        // Metrics landed under the right labels.
        let snap = obs.snapshot();
        match snap.get("cgmio_io_service_us", &[("proc", "0"), ("drive", "0"), ("kind", "write")]) {
            Some(SampleValue::Histogram(h)) => assert_eq!(h.count, 1),
            other => panic!("missing write service histogram: {other:?}"),
        }
        match snap.get("cgmio_io_bytes_total", &[("proc", "0"), ("drive", "0"), ("kind", "read")]) {
            Some(SampleValue::Counter(b)) => assert_eq!(*b, 4),
            other => panic!("missing read byte counter: {other:?}"),
        }
    }

    #[test]
    fn retry_counter_counts_without_obs_attached() {
        use cgmio_pdm::{FaultInjector, FaultPlan};
        let geom = DiskGeometry::new(1, 4);
        let inj = FaultInjector::new(MemStorage::new(geom), 1, FaultPlan::transient(5, 0.3));
        let opts = IoEngineOpts {
            retry: RetryPolicy { max_attempts: 12, base_backoff_us: 0 },
            ..Default::default()
        };
        let s = ConcurrentStorage::new(Arc::new(inj), 1, opts);
        let retries = s.retry_counter();
        for i in 0..40u64 {
            s.write_track(0, i, &[i as u8]).unwrap();
        }
        s.flush(false).unwrap();
        for i in 0..40u64 {
            s.read_track(0, i).unwrap();
        }
        assert!(retries.get() > 0, "expected retries at a 30% transient rate");
    }

    #[test]
    fn works_behind_disk_array_with_identical_accounting() {
        let geom = DiskGeometry::new(2, 4);
        let s = engine(2, 4, IoEngineOpts::default());
        let mut arr = DiskArray::with_storage(geom, Box::new(s));
        arr.parallel_write(&[
            (TrackAddr::new(0, 0), &[1u8][..]),
            (TrackAddr::new(1, 0), &[2u8][..]),
        ])
        .unwrap();
        let r = arr.parallel_read(&[TrackAddr::new(0, 0), TrackAddr::new(1, 0)]).unwrap();
        assert_eq!(r[0], vec![1, 0, 0, 0]);
        assert_eq!(r[1], vec![2, 0, 0, 0]);
        assert_eq!(arr.stats().total_ops(), 2);
        assert_eq!(arr.stats().full_ops, 2);
        assert_eq!(arr.stats().per_disk_blocks, vec![2, 2]);
    }
}
