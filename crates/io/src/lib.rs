//! # cgmio-io — concurrent parallel-disk I/O engine
//!
//! The PDM substrate in `cgmio-pdm` *counts* parallel I/O operations; it
//! does not *perform* them in parallel. This crate adds the missing
//! physical concurrency behind the same [`cgmio_pdm::TrackStorage`]
//! trait, so a legal parallel operation's ≤ `D` block transfers really
//! overlap in time:
//!
//! * [`ConcurrentStorage`] — one worker thread + bounded submission
//!   queue per simulated drive, with write-behind, a per-drive prefetch
//!   cache, configurable [`Durability`], and graceful shutdown that
//!   drains in-flight writes,
//! * [`trace`] — an opt-in I/O event trace (per-op latency, queue depth,
//!   bytes, cache hits, retries, and the EM superstep/[`Phase`] active
//!   at submission) exportable as JSONL or CSV,
//! * [`retry`] — the recovery policy over the fault taxonomy of
//!   [`cgmio_pdm::fault`]: bounded retry-with-backoff for transient
//!   faults (applied inside the drive workers and, via [`RetryStorage`],
//!   to synchronous backends) and per-track FNV checksums that turn
//!   silent bit rot into typed [`cgmio_pdm::IoErrorKind::Corrupt`]
//!   errors.
//!
//! The engine is a drop-in behind `DiskArray::with_storage`: legality
//! checks ("≤ 1 track per disk per op") and [`cgmio_pdm::IoStats`]
//! accounting live above the storage trait, so counts are identical to
//! the synchronous backends — only wall-clock behaviour changes. The
//! EM-CGM runners in `cgmio-core` use it to read the next virtual
//! processor's context ahead of the current one's compute step and to
//! write contexts/messages behind it (the asynchronous pipeline the
//! paper's physical prototype relied on).
//!
//! When an [`Obs`] handle is passed via [`IoEngineOpts::obs`], the
//! drive workers additionally record per-drive service-time
//! histograms, byte/cache-hit/retry counters, queue-depth gauges, and
//! prefetch-drop counters into its registry (catalogue in
//! `docs/OBSERVABILITY.md`) — all off the accounting path, so
//! `IoStats` stays bit-identical with observability on.

#![deny(missing_docs)]

pub mod async_backend;
pub mod engine;
pub mod retry;
pub mod trace;

pub use async_backend::AsyncFileStorage;
pub use cgmio_obs::{Counter, Obs, Phase};
pub use cgmio_pdm::{classify, FaultError, IoErrorKind};
pub use engine::{
    ConcurrentStorage, Durability, IoEngineOpts, ReadTicket, WriteTicket, MAX_DEFERRED_WRITE_ERRORS,
};
pub use retry::{track_checksum, RetryPolicy, RetryStorage};
pub use trace::{summarize, write_csv, write_jsonl, OpKind, TraceEvent, TraceHandle, TraceSummary};
