//! Async submission backend: one reactor thread + submission queue per
//! drive, batching everything queued between wakeups into coalesced
//! physical ops against real files.
//!
//! The concurrent engine ([`crate::ConcurrentStorage`]) services its
//! bounded queue one operation at a time — good enough for the
//! simulated-latency studies, but on real multi-file layouts every
//! queued block still costs one positioned syscall. This backend is the
//! ROADMAP's "async real-disk backend": each drive's reactor drains its
//! *entire* submission queue per wakeup (the submission batch), merges
//! runs of adjacent-track same-kind blocks, and issues each run as a
//! single positioned transfer of `run_len * block_bytes` bytes. A
//! compound superstep's context sweep — tracks `t, t+1, …` on each
//! drive — collapses from `n` syscalls into one.
//!
//! Two service paths per drive:
//!
//! * **Raw** — the reactor owns the drive's backing file and issues
//!   coalesced `read_at`/`write_at` directly; with
//!   [`IoEngineOpts::direct_io`] set it opens O_DIRECT (sector-multiple
//!   block sizes only, automatic fallback to buffered I/O where the
//!   filesystem refuses) and draws sector-aligned buffers from
//!   [`BlockPool::checkout_aligned`],
//! * **Layered** — the reactor drives any inner [`TrackStorage`]
//!   track-by-track in queue order. This is the fault-injection path:
//!   per-track calls preserve the deterministic per-drive op sequence
//!   the injector's rolls are keyed on, so fault and retry totals are
//!   bit-identical to the concurrent engine's.
//!
//! A true io_uring reactor needs raw syscall access the workspace's
//! no-new-dependencies rule does not currently admit (no `libc`/
//! `io-uring` crates are vendored); the per-drive reactor thread is the
//! portable fallback that same seam would dispatch to, and the batching
//! and alignment contracts here are exactly what an io_uring submission
//! queue wants.
//!
//! Everything observable above the trait is identical to the other
//! backends: per-drive FIFO coherence (a demand read submitted after a
//! write of the same track sees the new bytes), write-behind with the
//! same bounded deferred-error list, split-phase tickets behind
//! [`TrackStorage::read_scatter_submit`], and graceful drain-on-drop.
//! `IoStats`, finals, and checkpoints are bit-identical — property-
//! tested in `tests/async_backend.rs`.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use cgmio_obs::{Counter, Gauge, Histogram, Obs, Phase, PhaseCell};
use cgmio_pdm::{
    classify, BlockPool, DiskGeometry, FaultError, IoErrorKind, PooledBlock, TrackAddr,
    TrackStorage,
};
use crossbeam::channel::{bounded, Receiver, Sender};

use crate::engine::MAX_DEFERRED_WRITE_ERRORS;
use crate::retry::{track_checksum, RetryPolicy};
use crate::trace::{OpKind, TraceEvent, TraceHandle};
use crate::{Durability, IoEngineOpts};

/// O_DIRECT flag value per architecture (the workspace vendors no libc
/// binding; the constant is ABI-stable per arch).
#[cfg(target_arch = "x86_64")]
const O_DIRECT: i32 = 0x4000;
#[cfg(target_arch = "aarch64")]
const O_DIRECT: i32 = 0x10000;
#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
const O_DIRECT: i32 = 0;

/// O_DIRECT transfers must be sector-aligned in offset, length, and
/// buffer address; 512 is the universal logical sector size, 4096 the
/// safe buffer alignment (covers 4Kn devices and page-cache bypass).
const SECTOR_BYTES: usize = 512;
const DIRECT_BUF_ALIGN: usize = 4096;

/// Submit-time context stamped onto each queued block (see the engine's
/// equivalent): trace sequencing plus the `(superstep, phase)` active
/// at submission.
#[derive(Debug, Clone, Copy, Default)]
struct Stamp {
    seq: u64,
    submit_us: u64,
    superstep: u64,
    phase: Phase,
}

/// One block of a vectored write, payload in a pooled buffer.
struct WriteBlock {
    track: u64,
    data: PooledBlock,
    stamp: Stamp,
}

type ReadManyReply = Vec<io::Result<Vec<u8>>>;

/// A batch's reply routing for one `ReadMany` entry: the sender plus
/// per-track result slots filled as coalesced runs complete.
type ReadReplySlot = (Sender<ReadManyReply>, Vec<Option<io::Result<Vec<u8>>>>);

/// One queued submission. Vectored: a whole per-drive scatter list is
/// one queue entry, exactly like the concurrent engine, so a huge
/// gather can never deadlock against the bounded queue.
enum AsyncOp {
    ReadMany { tracks: Vec<(u64, Stamp)>, reply: Sender<ReadManyReply> },
    WriteMany { blocks: Vec<WriteBlock>, done: Option<Sender<()>> },
    Flush { sync: bool, reply: Sender<io::Result<()>>, stamp: Stamp },
    Discard { tracks: std::ops::Range<u64>, reply: Sender<io::Result<bool>> },
}

impl AsyncOp {
    /// Blocks this entry contributes to a submission batch.
    fn blocks(&self) -> usize {
        match self {
            AsyncOp::ReadMany { tracks, .. } => tracks.len(),
            AsyncOp::WriteMany { blocks, .. } => blocks.len(),
            AsyncOp::Flush { .. } | AsyncOp::Discard { .. } => 1,
        }
    }
}

/// A drive's submission queue: entries plus the closed flag the reactor
/// watches for shutdown.
struct QueueState {
    ops: std::collections::VecDeque<AsyncOp>,
    closed: bool,
}

/// Queue shared between submitters and one reactor.
struct DriveQueue {
    state: Mutex<QueueState>,
    /// Signals the reactor (new work / close) *and* submitters
    /// (backpressure slot freed) — the queue is tiny, so one condvar
    /// for both directions keeps this simple.
    cv: Condvar,
    depth: usize,
}

impl DriveQueue {
    fn new(depth: usize) -> Self {
        Self {
            state: Mutex::new(QueueState { ops: std::collections::VecDeque::new(), closed: false }),
            cv: Condvar::new(),
            depth: depth.max(1),
        }
    }

    /// Enqueue, blocking while the queue is at capacity (backpressure).
    fn push(&self, op: AsyncOp) -> io::Result<()> {
        let mut g = self.state.lock().unwrap();
        while g.ops.len() >= self.depth && !g.closed {
            g = self.cv.wait(g).unwrap();
        }
        if g.closed {
            return Err(io::Error::other("drive reactor is gone"));
        }
        g.ops.push_back(op);
        self.cv.notify_all();
        Ok(())
    }

    /// Drain everything queued, waiting when empty; `None` once closed
    /// and fully drained.
    fn drain(&self) -> Option<Vec<AsyncOp>> {
        let mut g = self.state.lock().unwrap();
        loop {
            if !g.ops.is_empty() {
                let batch: Vec<AsyncOp> = g.ops.drain(..).collect();
                self.cv.notify_all(); // free backpressure waiters
                return Some(batch);
            }
            if g.closed {
                return None;
            }
            g = self.cv.wait(g).unwrap();
        }
    }

    fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.cv.notify_all();
    }
}

/// Deferred write-behind failure (same shape as the engine's).
struct DeferredWriteError {
    drive: usize,
    track: u64,
    superstep: u64,
    kind: IoErrorKind,
    detail: String,
}

#[derive(Default)]
struct DeferredErrors {
    errors: Vec<DeferredWriteError>,
    dropped: u64,
}

/// What a reactor services its drive against.
enum DriveIo {
    /// Direct positioned I/O on the drive's own backing file —
    /// adjacent-track runs become single multi-block transfers.
    Raw(RawFile),
    /// Any inner storage, driven track-by-track in queue order (the
    /// fault-injection and in-memory path). Coalescing still batches
    /// the queue drain; the per-track calls keep wrapper semantics
    /// (deterministic fault rolls) intact.
    Layered(Arc<dyn TrackStorage>),
}

/// One drive's backing file plus its direct-I/O mode.
struct RawFile {
    file: File,
    block_bytes: usize,
    /// O_DIRECT is active: transfers must use sector-aligned pooled
    /// buffers and whole-block lengths.
    direct: bool,
}

impl RawFile {
    /// Open (create if needed) `dir/disk{d}.dat`, trying O_DIRECT first
    /// when requested (`IoEngineOpts::direct_io`) and the geometry
    /// allows it, and falling back to buffered I/O when the flag is
    /// unsupported (tmpfs, exotic filesystems) or the block size is not
    /// a sector multiple.
    fn open(dir: &Path, drive: usize, block_bytes: usize, direct_io: bool) -> io::Result<Self> {
        let path = dir.join(format!("disk{drive}.dat"));
        let want_direct = direct_io && O_DIRECT != 0 && block_bytes.is_multiple_of(SECTOR_BYTES);
        if want_direct {
            use std::os::unix::fs::OpenOptionsExt;
            if let Ok(file) = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(false)
                .custom_flags(O_DIRECT)
                .open(&path)
            {
                return Ok(Self { file, block_bytes, direct: true });
            }
            // else fall through to buffered
        }
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(&path)?;
        Ok(Self { file, block_bytes, direct: false })
    }

    /// Read `n` consecutive tracks starting at `track` into `buf`
    /// (`n * block_bytes` long), zero-filling past EOF.
    fn read_run(&self, track: u64, buf: &mut [u8]) -> io::Result<()> {
        let off = track * self.block_bytes as u64;
        let mut read = 0;
        while read < buf.len() {
            match self.file.read_at(&mut buf[read..], off + read as u64)? {
                0 => {
                    buf[read..].fill(0);
                    break;
                }
                n => read += n,
            }
        }
        Ok(())
    }

    /// Write a run of consecutive full tracks starting at `track`.
    fn write_run(&self, track: u64, buf: &[u8]) -> io::Result<()> {
        self.file.write_all_at(buf, track * self.block_bytes as u64)
    }

    fn tracks_used(&self) -> u64 {
        self.file.metadata().map(|m| m.len() / self.block_bytes as u64).unwrap_or(0)
    }
}

/// Split-phase completion handle parked in the pending-ticket map.
struct PendingRead {
    addrs: Vec<TrackAddr>,
    replies: Vec<Option<Receiver<ReadManyReply>>>,
}

/// [`TrackStorage`] served by one submission-queue reactor per drive,
/// batching and coalescing queued ops into vectored physical transfers.
///
/// Construct with [`AsyncFileStorage::open_dir`] for real multi-file
/// layouts (the coalescing path) or [`AsyncFileStorage::over`] to layer
/// the reactor over any inner storage (fault injection, tests). Behind
/// `DiskArray::with_storage` it is a drop-in for the other backends:
/// logical accounting lives above the trait, so `IoStats` and finals
/// are bit-identical (see `tests/async_backend.rs`).
pub struct AsyncFileStorage {
    queues: Vec<Arc<DriveQueue>>,
    reactors: Vec<JoinHandle<()>>,
    write_err: Arc<Mutex<DeferredErrors>>,
    durability: Durability,
    trace: Option<TraceHandle>,
    pool: BlockPool,
    obs: Option<Obs>,
    phase: Option<Arc<PhaseCell>>,
    superstep: AtomicU64,
    retries: Counter,
    deferred_drops: Counter,
    pending_reads: Mutex<HashMap<u64, PendingRead>>,
    next_ticket: AtomicU64,
    /// `tracks_used` source: raw reactors report file lengths through
    /// their shared handles, layered ones defer to the inner storage.
    used: UsedSource,
}

enum UsedSource {
    Raw(Vec<Arc<RawFile>>),
    Layered(Arc<dyn TrackStorage>),
}

impl AsyncFileStorage {
    /// Open (or create) one backing file per drive inside `dir` — the
    /// same `disk{d}.dat` layout as [`cgmio_pdm::FileStorage`], so the
    /// two file backends interoperate on the same directory — and start
    /// one reactor per drive in raw coalescing mode.
    pub fn open_dir(dir: &Path, geom: DiskGeometry, opts: IoEngineOpts) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let files: Vec<Arc<RawFile>> = (0..geom.num_disks)
            .map(|d| RawFile::open(dir, d, geom.block_bytes, opts.direct_io).map(Arc::new))
            .collect::<io::Result<_>>()?;
        let ios = files.iter().map(|f| {
            DriveIo::Raw(RawFile {
                file: f.file.try_clone().expect("clone drive fd"),
                block_bytes: f.block_bytes,
                direct: f.direct,
            })
        });
        Ok(Self::build(ios.collect(), UsedSource::Raw(files), opts))
    }

    /// Layer reactors over an existing storage (fault injection, memory
    /// backends, tests). Ops are serviced per-track in queue order, so
    /// deterministic wrappers beneath see the same op sequence as under
    /// the concurrent engine.
    pub fn over(inner: Arc<dyn TrackStorage>, num_disks: usize, opts: IoEngineOpts) -> Self {
        let ios = (0..num_disks).map(|_| DriveIo::Layered(inner.clone())).collect();
        Self::build(ios, UsedSource::Layered(inner), opts)
    }

    fn build(ios: Vec<DriveIo>, used: UsedSource, opts: IoEngineOpts) -> Self {
        let write_err = Arc::new(Mutex::new(DeferredErrors::default()));
        let trace = opts.trace.then(TraceHandle::new);
        let retries = match &opts.obs {
            Some(o) => {
                o.metrics().counter("cgmio_io_retries_total", &[("proc", opts.proc.to_string())])
            }
            None => Counter::detached(),
        };
        let deferred_drops = match &opts.obs {
            Some(o) => o.metrics().counter(
                "cgmio_io_deferred_write_errors_dropped_total",
                &[("proc", opts.proc.to_string())],
            ),
            None => Counter::detached(),
        };
        let pool = BlockPool::default();
        let mut queues = Vec::with_capacity(ios.len());
        let mut reactors = Vec::with_capacity(ios.len());
        for (drive, io_path) in ios.into_iter().enumerate() {
            let queue = Arc::new(DriveQueue::new(opts.queue_depth));
            let ctx = Reactor {
                drive,
                proc: opts.proc,
                io: io_path,
                write_err: write_err.clone(),
                trace: trace.clone(),
                retry: opts.retry,
                verify: opts.verify_checksums,
                obs: opts.obs.clone(),
                metrics: opts.obs.as_ref().map(|o| ReactorObs::new(o, opts.proc, drive)),
                retries: retries.clone(),
                deferred_drops: deferred_drops.clone(),
                pool: pool.clone(),
            };
            let q = queue.clone();
            reactors.push(
                std::thread::Builder::new()
                    .name(format!("cgmio-aio-d{drive}"))
                    .spawn(move || ctx.run(q))
                    .expect("spawn drive reactor"),
            );
            queues.push(queue);
        }
        Self {
            queues,
            reactors,
            write_err,
            durability: opts.durability,
            trace,
            pool,
            phase: opts.obs.as_ref().map(|o| o.phase_cell(opts.proc as u64)),
            obs: opts.obs,
            superstep: AtomicU64::new(0),
            retries,
            deferred_drops,
            pending_reads: Mutex::new(HashMap::new()),
            next_ticket: AtomicU64::new(1),
            used,
        }
    }

    /// Handle onto the event trace, if `opts.trace` was set.
    pub fn trace_handle(&self) -> Option<TraceHandle> {
        self.trace.clone()
    }

    /// Handle onto the reactors' transient-retry counter.
    pub fn retry_counter(&self) -> Counter {
        self.retries.clone()
    }

    /// Handle onto the count of deferred write errors discarded by the
    /// bounded retained list (see
    /// [`crate::engine::MAX_DEFERRED_WRITE_ERRORS`]).
    pub fn deferred_drop_counter(&self) -> Counter {
        self.deferred_drops.clone()
    }

    fn stamp(&self) -> Stamp {
        let (seq, submit_us) = match &self.trace {
            Some(t) => (t.next_seq(), t.now_us()),
            None => (0, self.obs.as_ref().map(|o| o.now_us()).unwrap_or(0)),
        };
        let (superstep, phase) = match self.phase.as_ref().map(|c| c.get()) {
            Some((step, phase)) if phase != Phase::None => (step, phase),
            _ => (self.superstep.load(Ordering::Relaxed), Phase::None),
        };
        Stamp { seq, submit_us, superstep, phase }
    }

    /// Surface (and clear) deferred write errors — same contract and
    /// message shape as the concurrent engine's.
    fn take_write_err(&self) -> io::Result<()> {
        let (mut errors, dropped) = {
            let mut g = self.write_err.lock().unwrap();
            (std::mem::take(&mut g.errors), std::mem::take(&mut g.dropped))
        };
        if errors.is_empty() {
            return Ok(());
        }
        let more = errors.len() as u64 - 1 + dropped;
        let suffix =
            if more > 0 { format!(" (+{more} more deferred write errors)") } else { String::new() };
        let d = errors.remove(0);
        Err(FaultError {
            kind: d.kind,
            disk: d.drive,
            track: d.track,
            detail: format!(
                "deferred write failed in superstep {}: {}{suffix}",
                d.superstep, d.detail
            ),
        }
        .into_io_error())
    }

    /// Submit a gather read: one vectored queue entry per participating
    /// drive, completion parked as a [`PendingRead`].
    fn submit_gather(&self, addrs: &[TrackAddr]) -> io::Result<PendingRead> {
        let nd = self.queues.len();
        let mut groups: Vec<Vec<(u64, Stamp)>> = vec![Vec::new(); nd];
        for a in addrs {
            groups[a.disk].push((a.track, self.stamp()));
        }
        let mut replies: Vec<Option<Receiver<ReadManyReply>>> = (0..nd).map(|_| None).collect();
        for (drive, tracks) in groups.into_iter().enumerate() {
            if tracks.is_empty() {
                continue;
            }
            let (tx, rx) = bounded(1);
            self.queues[drive].push(AsyncOp::ReadMany { tracks, reply: tx })?;
            replies[drive] = Some(rx);
        }
        Ok(PendingRead { addrs: addrs.to_vec(), replies })
    }

    fn wait_gather(&self, pending: PendingRead) -> io::Result<Vec<Vec<u8>>> {
        let nd = self.queues.len();
        let mut per_drive: Vec<std::collections::VecDeque<io::Result<Vec<u8>>>> =
            (0..nd).map(|_| std::collections::VecDeque::new()).collect();
        for (drive, rx) in pending.replies.into_iter().enumerate() {
            if let Some(rx) = rx {
                per_drive[drive] =
                    rx.recv().map_err(|_| io::Error::other("drive reactor died mid-read"))?.into();
            }
        }
        pending
            .addrs
            .iter()
            .map(|a| per_drive[a.disk].pop_front().expect("one result per submitted track"))
            .collect()
    }

    fn read_scatter_owned(&self, addrs: &[TrackAddr]) -> io::Result<Vec<Vec<u8>>> {
        let pending = self.submit_gather(addrs)?;
        self.wait_gather(pending)
    }
}

impl TrackStorage for AsyncFileStorage {
    fn read_track(&self, disk: usize, track: u64) -> io::Result<Vec<u8>> {
        self.read_batch(&[TrackAddr::new(disk, track)]).map(|mut v| v.pop().unwrap())
    }

    fn write_track(&self, disk: usize, track: u64, data: &[u8]) -> io::Result<()> {
        self.write_scatter(&[(TrackAddr::new(disk, track), data)])
    }

    fn read_batch(&self, addrs: &[TrackAddr]) -> io::Result<Vec<Vec<u8>>> {
        self.read_scatter_owned(addrs)
    }

    fn read_scatter_with(
        &self,
        addrs: &[TrackAddr],
        f: &mut dyn FnMut(usize, &[u8]),
    ) -> io::Result<()> {
        for (i, block) in self.read_scatter_owned(addrs)?.into_iter().enumerate() {
            f(i, &block);
        }
        Ok(())
    }

    fn write_batch(&self, writes: &[(TrackAddr, &[u8])]) -> io::Result<()> {
        self.write_scatter(writes)
    }

    /// Write-behind: payloads copy into pooled buffers, one vectored
    /// queue entry per participating drive, and the call returns once
    /// everything is queued. Deferred errors surface here or at flush.
    fn write_scatter(&self, writes: &[(TrackAddr, &[u8])]) -> io::Result<()> {
        self.take_write_err()?;
        let nd = self.queues.len();
        let mut groups: Vec<Vec<WriteBlock>> = (0..nd).map(|_| Vec::new()).collect();
        for (a, data) in writes {
            let stamp = self.stamp();
            let mut block = self.pool.checkout(data.len());
            block.copy_from_slice(data);
            groups[a.disk].push(WriteBlock { track: a.track, data: block, stamp });
        }
        for (drive, blocks) in groups.into_iter().enumerate() {
            if !blocks.is_empty() {
                self.queues[drive].push(AsyncOp::WriteMany { blocks, done: None })?;
            }
        }
        Ok(())
    }

    /// Split-phase gather read: submits immediately (the reactors start
    /// transferring while the caller computes) and parks the completion
    /// under an opaque ticket for [`TrackStorage::read_scatter_wait`].
    fn read_scatter_submit(&self, addrs: &[TrackAddr]) -> io::Result<u64> {
        let pending = self.submit_gather(addrs)?;
        let id = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        self.pending_reads.lock().unwrap().insert(id, pending);
        Ok(id)
    }

    fn read_scatter_wait(
        &self,
        ticket: u64,
        _addrs: &[TrackAddr],
        f: &mut dyn FnMut(usize, &[u8]),
    ) -> io::Result<()> {
        let pending = self
            .pending_reads
            .lock()
            .unwrap()
            .remove(&ticket)
            .ok_or_else(|| io::Error::other("unknown or already-redeemed read ticket"))?;
        for (i, block) in self.wait_gather(pending)?.into_iter().enumerate() {
            f(i, &block);
        }
        Ok(())
    }

    /// Hints are no-ops here: the backend keeps no cache (coalescing,
    /// not caching, is its latency lever), and a hint must never change
    /// observable behaviour — so dropping them all is the equivalence-
    /// preserving choice, exactly like the engine under `ignore_hints`.
    fn prefetch(&self, _addrs: &[TrackAddr]) {}

    fn flush(&self, sync: bool) -> io::Result<()> {
        let fsync = sync || self.durability == Durability::SyncPerSuperstep;
        let mut replies = Vec::with_capacity(self.queues.len());
        for q in &self.queues {
            let (tx, rx) = bounded(1);
            let stamp = self.stamp();
            q.push(AsyncOp::Flush { sync: fsync, reply: tx, stamp })?;
            replies.push(rx);
        }
        self.superstep.fetch_add(1, Ordering::Relaxed);
        for rx in replies {
            rx.recv().map_err(|_| io::Error::other("drive reactor died mid-flush"))??;
        }
        self.take_write_err()
    }

    fn sync_disk(&self, disk: usize) -> io::Result<()> {
        let (tx, rx) = bounded(1);
        let stamp = self.stamp();
        self.queues[disk].push(AsyncOp::Flush { sync: true, reply: tx, stamp })?;
        rx.recv().map_err(|_| io::Error::other("drive reactor died mid-sync"))?
    }

    /// Travels the FIFO queue like everything else, so every write
    /// submitted before the discard is applied first.
    fn discard(&self, disk: usize, tracks: std::ops::Range<u64>) -> io::Result<bool> {
        let (tx, rx) = bounded(1);
        self.queues[disk].push(AsyncOp::Discard { tracks, reply: tx })?;
        rx.recv().map_err(|_| io::Error::other("drive reactor died mid-discard"))?
    }

    fn tracks_used(&self) -> Vec<u64> {
        let _ = self.flush(false);
        match &self.used {
            UsedSource::Raw(files) => files.iter().map(|f| f.tracks_used()).collect(),
            UsedSource::Layered(inner) => inner.tracks_used(),
        }
    }
}

impl Drop for AsyncFileStorage {
    /// Close every queue, let the reactors drain what was already
    /// submitted, and join them.
    fn drop(&mut self) {
        for q in &self.queues {
            q.close();
        }
        for r in self.reactors.drain(..) {
            let _ = r.join();
        }
    }
}

/// Per-drive metric handles for the async path, resolved once at spawn.
struct ReactorObs {
    /// Blocks per queue drain — the submission-batch-size distribution
    /// (`cgmio_io_submit_batch_blocks{proc,drive}`). Values near 1 mean
    /// the submitter is serial (thread-per-drive territory); large
    /// values mean the reactor is amortising and coalescing.
    batch_blocks: Histogram,
    /// Blocks of the current batch not yet physically issued
    /// (`cgmio_io_inflight_depth{proc,drive}`): set to the batch size on
    /// drain, decremented per issued run, 0 between batches — so a
    /// barrier reply (flush) observes an idle gauge.
    inflight: Gauge,
}

impl ReactorObs {
    fn new(obs: &Obs, proc: usize, drive: usize) -> Self {
        let labels = [("proc", proc.to_string()), ("drive", drive.to_string())];
        Self {
            batch_blocks: obs.metrics().histogram("cgmio_io_submit_batch_blocks", &labels),
            inflight: obs.metrics().gauge("cgmio_io_inflight_depth", &labels),
        }
    }
}

/// A coalescable unit extracted from a drained batch: `start..start+n`
/// consecutive tracks of one kind.
enum Run {
    /// Destinations: `(out_vec_index, position)` per track, so results
    /// route back to their vectored replies in request order.
    Read {
        start: u64,
        stamps: Vec<Stamp>,
        dest: Vec<(usize, usize)>,
    },
    Write {
        start: u64,
        blocks: Vec<WriteBlock>,
    },
}

/// One drive's reactor state.
struct Reactor {
    drive: usize,
    proc: usize,
    io: DriveIo,
    write_err: Arc<Mutex<DeferredErrors>>,
    trace: Option<TraceHandle>,
    retry: RetryPolicy,
    verify: bool,
    obs: Option<Obs>,
    metrics: Option<ReactorObs>,
    retries: Counter,
    deferred_drops: Counter,
    pool: BlockPool,
}

impl Reactor {
    fn run(self, queue: Arc<DriveQueue>) {
        // Expected FNV checksum per track written through this reactor.
        let mut sums: HashMap<u64, u64> = HashMap::new();
        while let Some(batch) = queue.drain() {
            let batch_blocks: usize = batch.iter().map(|op| op.blocks()).sum();
            if let Some(m) = &self.metrics {
                m.batch_blocks.observe(batch_blocks as u64);
                m.inflight.set(batch_blocks as i64);
            }
            self.service(batch, &mut sums);
            if let Some(m) = &self.metrics {
                m.inflight.set(0); // safety net against accounting drift
            }
        }
    }

    /// Service one drained batch: walk entries in FIFO order, grow
    /// maximal adjacent-track same-kind runs across entry boundaries,
    /// and issue each run as one physical op. Flush/discard entries are
    /// ordering barriers — they cut the current run.
    fn service(&self, batch: Vec<AsyncOp>, sums: &mut HashMap<u64, u64>) {
        // Reply routing for the read results of this batch.
        let mut read_replies: Vec<ReadReplySlot> = Vec::new();
        let mut run: Option<Run> = None;
        let flush_run = |run: &mut Option<Run>,
                         read_replies: &mut Vec<ReadReplySlot>,
                         sums: &mut HashMap<u64, u64>| {
            if let Some(r) = run.take() {
                self.issue(r, read_replies, sums);
            }
        };
        for op in batch {
            match op {
                AsyncOp::ReadMany { tracks, reply } => {
                    let out_idx = read_replies.len();
                    let mut slots = Vec::with_capacity(tracks.len());
                    slots.resize_with(tracks.len(), || None);
                    read_replies.push((reply, slots));
                    for (pos, (track, stamp)) in tracks.into_iter().enumerate() {
                        let extend = matches!(
                            &run,
                            Some(Run::Read { start, stamps, .. })
                                if start + stamps.len() as u64 == track
                        );
                        if extend {
                            if let Some(Run::Read { stamps, dest, .. }) = &mut run {
                                stamps.push(stamp);
                                dest.push((out_idx, pos));
                            }
                        } else {
                            flush_run(&mut run, &mut read_replies, sums);
                            run = Some(Run::Read {
                                start: track,
                                stamps: vec![stamp],
                                dest: vec![(out_idx, pos)],
                            });
                        }
                    }
                }
                AsyncOp::WriteMany { blocks, done } => {
                    for block in blocks {
                        let extend = matches!(
                            &run,
                            Some(Run::Write { start, blocks })
                                if start + blocks.len() as u64 == block.track
                        );
                        if extend {
                            if let Some(Run::Write { blocks, .. }) = &mut run {
                                blocks.push(block);
                            }
                        } else {
                            flush_run(&mut run, &mut read_replies, sums);
                            run = Some(Run::Write { start: block.track, blocks: vec![block] });
                        }
                    }
                    // The blocks are issued (possibly merged into a
                    // later entry's run) before the batch ends; signal
                    // completion after the whole batch is serviced via
                    // the deferred senders list.
                    if let Some(tx) = done {
                        // Run issue order within the batch preserves
                        // FIFO per track, so completion at batch end is
                        // correct — but we must only signal after this
                        // block's run is issued. Cut the run here to
                        // keep the signal precise.
                        flush_run(&mut run, &mut read_replies, sums);
                        let _ = tx.send(());
                    }
                }
                AsyncOp::Flush { sync, reply, stamp } => {
                    flush_run(&mut run, &mut read_replies, sums);
                    let start_us = self.now_us();
                    let res = if sync { self.sync_drive() } else { Ok(()) };
                    self.trace_event(OpKind::Flush, 0, 0, stamp, start_us, 0);
                    if let Some(m) = &self.metrics {
                        m.inflight.add(-1);
                    }
                    let _ = reply.send(res);
                }
                AsyncOp::Discard { tracks, reply } => {
                    flush_run(&mut run, &mut read_replies, sums);
                    sums.retain(|t, _| !tracks.contains(t));
                    if let Some(m) = &self.metrics {
                        m.inflight.add(-1);
                    }
                    let _ = reply.send(self.discard_tracks(tracks));
                }
            }
        }
        flush_run(&mut run, &mut read_replies, sums);
        for (reply, slots) in read_replies {
            let out: ReadManyReply =
                slots.into_iter().map(|s| s.expect("every read slot serviced")).collect();
            // The submitter may have abandoned the ticket; not an error.
            let _ = reply.send(out);
        }
    }

    /// Issue one coalesced run as a single physical op (raw path) or a
    /// per-track loop (layered path), tracing each block either way.
    fn issue(&self, run: Run, read_replies: &mut [ReadReplySlot], sums: &mut HashMap<u64, u64>) {
        match run {
            Run::Read { start, stamps, dest } => {
                if let Some(m) = &self.metrics {
                    m.inflight.add(-(stamps.len() as i64));
                }
                let results = self.issue_read(start, stamps, sums);
                for ((out_idx, pos), res) in dest.into_iter().zip(results) {
                    read_replies[out_idx].1[pos] = Some(res);
                }
            }
            Run::Write { start, blocks } => {
                if let Some(m) = &self.metrics {
                    m.inflight.add(-(blocks.len() as i64));
                }
                self.issue_write(start, blocks, sums);
            }
        }
    }

    fn issue_read(
        &self,
        start: u64,
        stamps: Vec<Stamp>,
        sums: &HashMap<u64, u64>,
    ) -> Vec<io::Result<Vec<u8>>> {
        let n = stamps.len();
        // Raw path: one positioned read of the whole run, split after.
        // On failure (or layered path) fall back to per-track service
        // with retries, so error attribution stays per-track.
        if let DriveIo::Raw(raw) = &self.io {
            let start_us = self.now_us();
            let len = n * raw.block_bytes;
            let mut buf = if raw.direct {
                self.pool.checkout_aligned(len, DIRECT_BUF_ALIGN)
            } else {
                self.pool.checkout(len)
            };
            if raw.read_run(start, &mut buf).is_ok() {
                // Verify the whole run before tracing anything, so a
                // mismatch falls back to the per-track path without
                // leaving duplicate events behind.
                let all_ok = !self.verify
                    || (0..n).all(|i| {
                        self.checksum_ok(
                            start + i as u64,
                            &buf[i * raw.block_bytes..(i + 1) * raw.block_bytes],
                            sums,
                        )
                    });
                if all_ok {
                    return stamps
                        .iter()
                        .enumerate()
                        .map(|(i, stamp)| {
                            let data = buf[i * raw.block_bytes..(i + 1) * raw.block_bytes].to_vec();
                            self.trace_event(
                                OpKind::Read,
                                start + i as u64,
                                data.len(),
                                *stamp,
                                start_us,
                                0,
                            );
                            Ok(data)
                        })
                        .collect();
                }
            }
        }
        (0..n as u64)
            .zip(stamps)
            .map(|(i, stamp)| {
                let track = start + i;
                let start_us = self.now_us();
                let (res, retries) = self.read_verified(track, sums);
                let bytes = res.as_ref().map(|d| d.len()).unwrap_or(0);
                self.trace_event(OpKind::Read, track, bytes, stamp, start_us, retries);
                res
            })
            .collect()
    }

    fn issue_write(&self, start: u64, blocks: Vec<WriteBlock>, sums: &mut HashMap<u64, u64>) {
        // Raw path: assemble the run into one zero-padded buffer and
        // write it with a single positioned call; fall back to the
        // per-track path on failure for per-track error attribution.
        if let DriveIo::Raw(raw) = &self.io {
            let n = blocks.len();
            let len = n * raw.block_bytes;
            let start_us = self.now_us();
            let mut buf = if raw.direct {
                self.pool.checkout_aligned(len, DIRECT_BUF_ALIGN)
            } else {
                self.pool.checkout(len)
            };
            buf.fill(0);
            for (i, b) in blocks.iter().enumerate() {
                buf[i * raw.block_bytes..i * raw.block_bytes + b.data.len()]
                    .copy_from_slice(&b.data);
            }
            if raw.write_run(start, &buf).is_ok() {
                for (i, b) in blocks.iter().enumerate() {
                    if self.verify {
                        sums.insert(
                            b.track,
                            track_checksum(&buf[i * raw.block_bytes..(i + 1) * raw.block_bytes]),
                        );
                    }
                    self.trace_event(OpKind::Write, b.track, b.data.len(), b.stamp, start_us, 0);
                }
                return;
            }
        }
        for WriteBlock { track, data, stamp } in blocks {
            let start_us = self.now_us();
            let bytes = data.len();
            let (res, retries) = self.retry.run(|| self.write_one(track, &data));
            match res {
                Ok(()) => {
                    if self.verify {
                        sums.insert(track, track_checksum(&data));
                    }
                }
                Err(e) => self.defer_error(track, stamp, e),
            }
            self.trace_event(OpKind::Write, track, bytes, stamp, start_us, retries);
        }
    }

    /// Record a failed deferred write: bounded list, overflow counted
    /// and traced — identical contract to the concurrent engine.
    fn defer_error(&self, track: u64, stamp: Stamp, e: io::Error) {
        let mut derr = self.write_err.lock().unwrap();
        if derr.errors.len() < MAX_DEFERRED_WRITE_ERRORS {
            derr.errors.push(DeferredWriteError {
                drive: self.drive,
                track,
                superstep: stamp.superstep,
                kind: classify(&e),
                detail: e.to_string(),
            });
        } else {
            derr.dropped += 1;
            drop(derr);
            self.deferred_drops.inc();
            let now = self.now_us();
            self.trace_event(OpKind::WriteErrorDropped, track, 0, stamp, now, 0);
        }
    }

    fn write_one(&self, track: u64, data: &[u8]) -> io::Result<()> {
        match &self.io {
            DriveIo::Layered(inner) => inner.write_track(self.drive, track, data),
            DriveIo::Raw(raw) => {
                let mut buf = if raw.direct {
                    self.pool.checkout_aligned(raw.block_bytes, DIRECT_BUF_ALIGN)
                } else {
                    self.pool.checkout(raw.block_bytes)
                };
                buf.fill(0);
                buf[..data.len()].copy_from_slice(data);
                raw.write_run(track, &buf)
            }
        }
    }

    fn read_one(&self, track: u64) -> io::Result<Vec<u8>> {
        match &self.io {
            DriveIo::Layered(inner) => inner.read_track(self.drive, track),
            DriveIo::Raw(raw) => {
                let mut buf = if raw.direct {
                    self.pool.checkout_aligned(raw.block_bytes, DIRECT_BUF_ALIGN)
                } else {
                    self.pool.checkout(raw.block_bytes)
                };
                raw.read_run(track, &mut buf)?;
                Ok(buf.to_vec())
            }
        }
    }

    fn read_verified(&self, track: u64, sums: &HashMap<u64, u64>) -> (io::Result<Vec<u8>>, u32) {
        self.retry.run(|| {
            let data = self.read_one(track)?;
            if self.verify && !self.checksum_ok(track, &data, sums) {
                return Err(FaultError {
                    kind: IoErrorKind::Corrupt,
                    disk: self.drive,
                    track,
                    detail: "track checksum mismatch on read".into(),
                }
                .into_io_error());
            }
            Ok(data)
        })
    }

    fn checksum_ok(&self, track: u64, data: &[u8], sums: &HashMap<u64, u64>) -> bool {
        sums.get(&track).is_none_or(|&want| track_checksum(data) == want)
    }

    fn sync_drive(&self) -> io::Result<()> {
        match &self.io {
            DriveIo::Layered(inner) => inner.sync_disk(self.drive),
            DriveIo::Raw(raw) => raw.file.sync_all(),
        }
    }

    fn discard_tracks(&self, tracks: std::ops::Range<u64>) -> io::Result<bool> {
        match &self.io {
            DriveIo::Layered(inner) => inner.discard(self.drive, tracks),
            // Raw files keep the bytes but the contract needs zeros:
            // rewrite the range as zero blocks (bounded by the file's
            // current length, so huge sparse ranges stay cheap).
            DriveIo::Raw(raw) => {
                let used = raw.tracks_used();
                let end = tracks.end.min(used);
                if tracks.start < end {
                    let zeros = vec![0u8; raw.block_bytes];
                    for t in tracks.start..end {
                        raw.write_run(t, &zeros)?;
                    }
                }
                Ok(true)
            }
        }
    }

    fn now_us(&self) -> u64 {
        match (&self.trace, &self.obs) {
            (Some(t), _) => t.now_us(),
            (None, Some(o)) => o.now_us(),
            (None, None) => 0,
        }
    }

    fn trace_event(
        &self,
        kind: OpKind,
        track: u64,
        bytes: usize,
        stamp: Stamp,
        start_us: u64,
        retries: u32,
    ) {
        if retries > 0 {
            self.retries.add(retries as u64);
        }
        if let Some(t) = &self.trace {
            let end_us = self.now_us();
            t.record(TraceEvent {
                seq: stamp.seq,
                proc: self.proc,
                drive: self.drive,
                kind,
                track,
                bytes,
                queue_depth: 0,
                submit_us: stamp.submit_us,
                start_us,
                end_us,
                cache_hit: false,
                retries,
                superstep: stamp.superstep,
                phase: stamp.phase,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgmio_pdm::testutil::TempDir;
    use cgmio_pdm::MemStorage;

    fn raw(dir: &TempDir, d: usize, bb: usize, opts: IoEngineOpts) -> AsyncFileStorage {
        AsyncFileStorage::open_dir(dir.path(), DiskGeometry::new(d, bb), opts).unwrap()
    }

    #[test]
    fn direct_io_roundtrips_with_aligned_buffers() {
        // Sector-multiple geometry, O_DIRECT requested: real direct I/O
        // where the filesystem grants it, silent buffered fallback
        // elsewhere — either way bytes and zero-fill must round-trip.
        let dir = TempDir::new("cgmio-aio-direct");
        let opts = IoEngineOpts { direct_io: true, ..Default::default() };
        let s = raw(&dir, 2, 512, opts);
        let payload: Vec<u8> = (0..512u32).map(|i| i as u8).collect();
        let writes: Vec<(TrackAddr, &[u8])> =
            (0..6).map(|t| (TrackAddr::new((t % 2) as usize, t / 2), &payload[..])).collect();
        s.write_scatter(&writes).unwrap();
        s.flush(true).unwrap();
        for t in 0..3u64 {
            assert_eq!(s.read_track(0, t).unwrap(), payload);
            assert_eq!(s.read_track(1, t).unwrap(), payload);
        }
        // Short payload zero-pads, never-written reads as zeros.
        s.write_track(0, 9, &[7u8; 3]).unwrap();
        let mut want = vec![0u8; 512];
        want[..3].copy_from_slice(&[7; 3]);
        assert_eq!(s.read_track(0, 9).unwrap(), want);
        assert_eq!(s.read_track(1, 9).unwrap(), vec![0u8; 512]);
    }

    #[test]
    fn roundtrip_through_reactors() {
        let dir = TempDir::new("cgmio-aio1");
        let s = raw(&dir, 2, 4, IoEngineOpts::default());
        s.write_batch(&[(TrackAddr::new(0, 0), &[1u8, 2][..]), (TrackAddr::new(1, 7), &[3u8][..])])
            .unwrap();
        let r = s.read_batch(&[TrackAddr::new(0, 0), TrackAddr::new(1, 7)]).unwrap();
        assert_eq!(r, vec![vec![1, 2, 0, 0], vec![3, 0, 0, 0]]);
        // unwritten track reads as zeros (zero-fill past EOF)
        assert_eq!(s.read_track(0, 50).unwrap(), vec![0; 4]);
    }

    #[test]
    fn read_after_write_behind_is_coherent() {
        let dir = TempDir::new("cgmio-aio2");
        let s = raw(&dir, 1, 2, IoEngineOpts::default());
        for i in 0..200u8 {
            s.write_track(0, 0, &[i]).unwrap();
            assert_eq!(s.read_track(0, 0).unwrap(), vec![i, 0]);
        }
    }

    #[test]
    fn adjacent_tracks_coalesce_and_roundtrip() {
        let dir = TempDir::new("cgmio-aio3");
        let s = raw(&dir, 1, 4, IoEngineOpts::default());
        // One vectored write of an adjacent run, then a vectored read
        // of the same run — both should coalesce; either way the bytes
        // must round-trip exactly.
        let payloads: Vec<Vec<u8>> = (0..16u8).map(|i| vec![i, i + 1, i + 2]).collect();
        let writes: Vec<(TrackAddr, &[u8])> = payloads
            .iter()
            .enumerate()
            .map(|(t, p)| (TrackAddr::new(0, t as u64), &p[..]))
            .collect();
        s.write_scatter(&writes).unwrap();
        let addrs: Vec<TrackAddr> = (0..16).map(|t| TrackAddr::new(0, t)).collect();
        let r = s.read_batch(&addrs).unwrap();
        for (i, block) in r.iter().enumerate() {
            assert_eq!(&block[..3], &payloads[i][..], "track {i}");
            assert_eq!(block[3], 0, "zero-padded tail");
        }
        // Non-adjacent and descending lists must also round-trip.
        let scattered = [TrackAddr::new(0, 9), TrackAddr::new(0, 3), TrackAddr::new(0, 4)];
        let r = s.read_batch(&scattered).unwrap();
        assert_eq!(r[0][0], 9);
        assert_eq!(r[1][0], 3);
        assert_eq!(r[2][0], 4);
    }

    #[test]
    fn interleaved_write_read_same_track_is_fifo() {
        let dir = TempDir::new("cgmio-aio4");
        let s = raw(&dir, 1, 2, IoEngineOpts::default());
        // Queue write(5)=a, then read 5, then write(5)=b without any
        // blocking wait between submits: the read must see `a`.
        s.write_track(0, 5, &[0xA]).unwrap();
        let ticket = s.read_scatter_submit(&[TrackAddr::new(0, 5)]).unwrap();
        s.write_track(0, 5, &[0xB]).unwrap();
        let mut got = Vec::new();
        s.read_scatter_wait(ticket, &[TrackAddr::new(0, 5)], &mut |_, b| got.push(b[0])).unwrap();
        assert_eq!(got, vec![0xA]);
        assert_eq!(s.read_track(0, 5).unwrap(), vec![0xB, 0]);
    }

    #[test]
    fn layered_path_services_mem_storage() {
        let geom = DiskGeometry::new(2, 4);
        let inner: Arc<dyn TrackStorage> = Arc::new(MemStorage::new(geom));
        {
            let s = AsyncFileStorage::over(inner.clone(), 2, IoEngineOpts::default());
            s.write_track(1, 3, &[7, 8]).unwrap();
            assert_eq!(s.read_track(1, 3).unwrap(), vec![7, 8, 0, 0]);
            for t in 0..30 {
                s.write_track(0, t, &[9]).unwrap();
            }
            // no flush: Drop must drain
        }
        assert_eq!(inner.tracks_used(), vec![30, 4]);
    }

    #[test]
    fn flush_drains_and_fsyncs_per_durability() {
        let dir = TempDir::new("cgmio-aio5");
        let opts = IoEngineOpts { durability: Durability::SyncPerSuperstep, ..Default::default() };
        let s = raw(&dir, 2, 4, opts);
        for t in 0..20 {
            s.write_batch(&[
                (TrackAddr::new(0, t), &[1u8][..]),
                (TrackAddr::new(1, t), &[2u8][..]),
            ])
            .unwrap();
        }
        s.flush(false).unwrap();
        assert_eq!(s.tracks_used(), vec![20, 20]);
    }

    #[test]
    fn deferred_write_errors_surface_and_stay_bounded() {
        struct FailingWrites;
        impl TrackStorage for FailingWrites {
            fn read_track(&self, _d: usize, _t: u64) -> io::Result<Vec<u8>> {
                Ok(vec![0; 4])
            }
            fn write_track(&self, _d: usize, _t: u64, _data: &[u8]) -> io::Result<()> {
                Err(io::Error::other("disk full"))
            }
            fn tracks_used(&self) -> Vec<u64> {
                vec![0]
            }
        }
        let s = AsyncFileStorage::over(Arc::new(FailingWrites), 1, IoEngineOpts::default());
        let drops = s.deferred_drop_counter();
        let n = MAX_DEFERRED_WRITE_ERRORS + 3;
        // One scatter call: separate writes could surface the first
        // deferred error early via the sticky check on the write path.
        let writes: Vec<(TrackAddr, &[u8])> =
            (0..n as u64).map(|t| (TrackAddr::new(0, t), &[1u8][..])).collect();
        s.write_scatter(&writes).unwrap();
        let msg = s.flush(false).unwrap_err().to_string();
        assert!(msg.contains("disk full"), "{msg}");
        assert!(msg.contains(&format!("+{} more", n - 1)), "{msg}");
        assert_eq!(drops.get(), 3);
        s.flush(false).unwrap(); // error cleared once surfaced
    }

    #[test]
    fn trace_records_each_block_of_coalesced_runs() {
        let dir = TempDir::new("cgmio-aio6");
        let opts = IoEngineOpts { trace: true, ..Default::default() };
        let s = raw(&dir, 1, 4, opts);
        let t = s.trace_handle().unwrap();
        let writes: Vec<(TrackAddr, &[u8])> =
            (0..8).map(|i| (TrackAddr::new(0, i), &[1u8][..])).collect();
        s.write_scatter(&writes).unwrap();
        s.flush(false).unwrap();
        let addrs: Vec<TrackAddr> = (0..8).map(|i| TrackAddr::new(0, i)).collect();
        s.read_batch(&addrs).unwrap();
        let evs = t.drain();
        assert_eq!(evs.iter().filter(|e| e.kind == OpKind::Write).count(), 8);
        assert_eq!(evs.iter().filter(|e| e.kind == OpKind::Read).count(), 8);
        assert_eq!(evs.iter().filter(|e| e.kind == OpKind::Flush).count(), 1);
    }

    #[test]
    fn obs_records_batch_and_inflight_series() {
        use cgmio_obs::SampleValue;
        let dir = TempDir::new("cgmio-aio7");
        let obs = Obs::new();
        let opts = IoEngineOpts { obs: Some(obs.clone()), ..Default::default() };
        let s = raw(&dir, 1, 4, opts);
        let writes: Vec<(TrackAddr, &[u8])> =
            (0..8).map(|i| (TrackAddr::new(0, i), &[1u8][..])).collect();
        s.write_scatter(&writes).unwrap();
        s.flush(false).unwrap();
        let snap = obs.snapshot();
        match snap.get("cgmio_io_submit_batch_blocks", &[("drive", "0"), ("proc", "0")]) {
            Some(SampleValue::Histogram(h)) => assert!(h.count >= 1, "batches observed"),
            other => panic!("missing batch histogram: {other:?}"),
        }
        match snap.get("cgmio_io_inflight_depth", &[("drive", "0"), ("proc", "0")]) {
            Some(SampleValue::Gauge(v)) => assert_eq!(*v, 0, "idle after flush"),
            other => panic!("missing inflight gauge: {other:?}"),
        }
    }

    #[test]
    fn interoperates_with_sync_file_layout() {
        use cgmio_pdm::FileStorage;
        let dir = TempDir::new("cgmio-aio8");
        let geom = DiskGeometry::new(2, 8);
        {
            let fs = FileStorage::open(dir.path(), geom).unwrap();
            fs.write_track(0, 2, &[5u8; 8]).unwrap();
            fs.write_track(1, 0, &[6u8; 4]).unwrap();
        }
        let s = raw(&dir, 2, 8, IoEngineOpts::default());
        assert_eq!(s.read_track(0, 2).unwrap(), vec![5u8; 8]);
        assert_eq!(&s.read_track(1, 0).unwrap()[..4], &[6u8; 4]);
        s.write_track(0, 3, &[7]).unwrap();
        s.flush(false).unwrap();
        let fs = FileStorage::open(dir.path(), geom).unwrap();
        assert_eq!(fs.read_track(0, 3).unwrap()[0], 7);
    }

    #[test]
    fn discard_zeroes_raw_ranges() {
        let dir = TempDir::new("cgmio-aio9");
        let s = raw(&dir, 1, 4, IoEngineOpts::default());
        for t in 0..6u64 {
            s.write_track(0, t, &[t as u8 + 1]).unwrap();
        }
        assert!(s.discard(0, 2..4).unwrap());
        assert_eq!(s.read_track(0, 2).unwrap(), vec![0; 4]);
        assert_eq!(s.read_track(0, 3).unwrap(), vec![0; 4]);
        assert_eq!(s.read_track(0, 1).unwrap(), vec![2, 0, 0, 0]);
        assert_eq!(s.read_track(0, 4).unwrap(), vec![5, 0, 0, 0]);
    }

    #[test]
    fn checksum_verification_catches_out_of_band_corruption() {
        let dir = TempDir::new("cgmio-aio10");
        let geom = DiskGeometry::new(1, 4);
        let opts = IoEngineOpts { verify_checksums: true, ..Default::default() };
        let s = AsyncFileStorage::open_dir(dir.path(), geom, opts).unwrap();
        s.write_track(0, 0, &[1, 2, 3, 4]).unwrap();
        s.flush(false).unwrap();
        assert_eq!(s.read_track(0, 0).unwrap(), vec![1, 2, 3, 4]);
        // corrupt the backing file behind the reactor's back
        {
            let fs = cgmio_pdm::FileStorage::open(dir.path(), geom).unwrap();
            fs.write_track(0, 0, &[9, 9, 9, 9]).unwrap();
        }
        let e = s.read_track(0, 0).unwrap_err();
        assert_eq!(classify(&e), IoErrorKind::Corrupt);
    }
}
