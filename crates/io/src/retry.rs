//! Bounded retry-with-backoff over the fault taxonomy.
//!
//! Recovery policy, by [`IoErrorKind`]:
//!
//! * `Transient` — retry up to [`RetryPolicy::max_attempts`] total
//!   attempts with exponential backoff; most injected faults (and real
//!   `EINTR`-class errors) clear this way,
//! * `Corrupt` — never retried: a re-read returns the same wrong bytes.
//!   The error surfaces so the layer above can decide (the EM runners
//!   fail the superstep; a rewrite of the track heals it),
//! * `Permanent` — never retried; surfaces immediately.
//!
//! The concurrent engine applies this policy inside its drive workers
//! (where retries also land in the event trace); [`RetryStorage`] applies
//! the same policy to a synchronous backend (`MemStorage`/`FileStorage`)
//! so the `Mem`/`SyncFile` backends survive injected faults too.

use std::io;
use std::time::Duration;

use cgmio_obs::Counter;
use cgmio_pdm::{classify, IoErrorKind, TrackAddr, TrackStorage};

/// Bounded exponential-backoff retry policy for transient faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per operation (first try included). `1` disables
    /// retrying.
    pub max_attempts: u32,
    /// Backoff before retry `k` (1-based) is `base_backoff_us << (k-1)`
    /// microseconds. `0` retries immediately.
    pub base_backoff_us: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { max_attempts: 4, base_backoff_us: 20 }
    }
}

impl RetryPolicy {
    /// Run `op`, retrying transient failures per the policy. Returns the
    /// final result plus the number of retries performed (0 = first try
    /// succeeded or the failure was not retryable).
    pub fn run<T>(&self, mut op: impl FnMut() -> io::Result<T>) -> (io::Result<T>, u32) {
        let mut retries = 0u32;
        loop {
            match op() {
                Ok(v) => return (Ok(v), retries),
                Err(e) => {
                    let attempts_left = self.max_attempts.saturating_sub(retries + 1);
                    if classify(&e) != IoErrorKind::Transient || attempts_left == 0 {
                        return (Err(e), retries);
                    }
                    if self.base_backoff_us > 0 {
                        std::thread::sleep(Duration::from_micros(
                            self.base_backoff_us << retries.min(16),
                        ));
                    }
                    retries += 1;
                }
            }
        }
    }
}

/// [`TrackStorage`] wrapper applying a [`RetryPolicy`] to every track
/// read and write of a synchronous backend.
///
/// Batch operations go through the per-track defaults, so each track of a
/// batch is retried independently. Used by `cgmio-core` to make the
/// `Mem`/`SyncFile` backends fault-tolerant; the concurrent engine has
/// the equivalent logic inside its drive workers instead.
pub struct RetryStorage<S> {
    inner: S,
    policy: RetryPolicy,
    retries: Counter,
}

impl<S: TrackStorage> RetryStorage<S> {
    /// Wrap `inner` with the given policy.
    pub fn new(inner: S, policy: RetryPolicy) -> Self {
        Self::with_counter(inner, policy, Counter::detached())
    }

    /// Wrap `inner`, incrementing `counter` once per retry performed —
    /// pass a registered metric handle to make the retry total
    /// first-class in run reports and Prometheus exports.
    pub fn with_counter(inner: S, policy: RetryPolicy, counter: Counter) -> Self {
        Self { inner, policy, retries: counter }
    }

    fn count<T>(&self, (res, retries): (io::Result<T>, u32)) -> io::Result<T> {
        if retries > 0 {
            self.retries.add(retries as u64);
        }
        res
    }
}

impl<S: TrackStorage> TrackStorage for RetryStorage<S> {
    fn read_track(&self, disk: usize, track: u64) -> io::Result<Vec<u8>> {
        self.count(self.policy.run(|| self.inner.read_track(disk, track)))
    }

    fn write_track(&self, disk: usize, track: u64, data: &[u8]) -> io::Result<()> {
        self.count(self.policy.run(|| self.inner.write_track(disk, track, data)))
    }

    fn prefetch(&self, addrs: &[TrackAddr]) {
        self.inner.prefetch(addrs);
    }

    fn flush(&self, sync: bool) -> io::Result<()> {
        self.inner.flush(sync)
    }

    fn sync_disk(&self, disk: usize) -> io::Result<()> {
        self.inner.sync_disk(disk)
    }

    fn discard(&self, disk: usize, tracks: std::ops::Range<u64>) -> io::Result<bool> {
        // Reclamation is bookkeeping, not a data transfer: it is never
        // faulted or retried, only forwarded.
        self.inner.discard(disk, tracks)
    }

    fn tracks_used(&self) -> Vec<u64> {
        self.inner.tracks_used()
    }
}

/// FNV-1a over the payload with trailing zeros stripped.
///
/// Stripping makes the checksum of a short write comparable with the
/// checksum of its zero-padded read-back, without the checksummer having
/// to know the block size.
pub fn track_checksum(data: &[u8]) -> u64 {
    let end = data.iter().rposition(|&b| b != 0).map(|i| i + 1).unwrap_or(0);
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in &data[..end] {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ end as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgmio_pdm::{DiskGeometry, FaultInjector, FaultPlan, MemStorage};
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn retry_recovers_from_transient_and_counts() {
        let fails = AtomicU32::new(2);
        let p = RetryPolicy { max_attempts: 4, base_backoff_us: 0 };
        let (res, retries) = p.run(|| {
            if fails.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |f| f.checked_sub(1)).is_ok()
            {
                Err(io::Error::new(io::ErrorKind::Interrupted, "blip"))
            } else {
                Ok(7)
            }
        });
        assert_eq!(res.unwrap(), 7);
        assert_eq!(retries, 2);
    }

    #[test]
    fn retry_gives_up_after_max_attempts() {
        let tries = AtomicU32::new(0);
        let p = RetryPolicy { max_attempts: 3, base_backoff_us: 0 };
        let (res, retries) = p.run::<()>(|| {
            tries.fetch_add(1, Ordering::SeqCst);
            Err(io::Error::new(io::ErrorKind::Interrupted, "blip"))
        });
        assert!(res.is_err());
        assert_eq!(retries, 2);
        assert_eq!(tries.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn permanent_errors_are_not_retried() {
        let tries = AtomicU32::new(0);
        let p = RetryPolicy::default();
        let (res, retries) = p.run::<()>(|| {
            tries.fetch_add(1, Ordering::SeqCst);
            Err(io::Error::other("gone"))
        });
        assert!(res.is_err());
        assert_eq!(retries, 0);
        assert_eq!(tries.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn retry_storage_survives_injected_faults() {
        let geom = DiskGeometry::new(2, 8);
        let inj = FaultInjector::new(MemStorage::new(geom), 2, FaultPlan::transient(11, 0.2));
        let s = RetryStorage::new(inj, RetryPolicy { max_attempts: 8, base_backoff_us: 0 });
        for t in 0..50 {
            s.write_track(t as usize % 2, t, &[t as u8; 8]).unwrap();
        }
        for t in 0..50 {
            assert_eq!(s.read_track(t as usize % 2, t).unwrap(), vec![t as u8; 8]);
        }
    }

    #[test]
    fn retry_storage_counts_retries_into_shared_counter() {
        let geom = DiskGeometry::new(2, 8);
        let inj = FaultInjector::new(MemStorage::new(geom), 2, FaultPlan::transient(11, 0.2));
        let counter = Counter::detached();
        let s = RetryStorage::with_counter(
            inj,
            RetryPolicy { max_attempts: 8, base_backoff_us: 0 },
            counter.clone(),
        );
        for t in 0..80 {
            s.write_track(t as usize % 2, t, &[t as u8; 8]).unwrap();
            let _ = s.read_track(t as usize % 2, t).unwrap();
        }
        assert!(counter.get() > 0, "a 20% transient rate over 160 ops must retry");
    }

    #[test]
    fn checksum_ignores_zero_padding_but_not_length_of_data() {
        assert_eq!(track_checksum(&[1, 2]), track_checksum(&[1, 2, 0, 0]));
        assert_eq!(track_checksum(&[1, 0, 2]), track_checksum(&[1, 0, 2, 0]));
        assert_ne!(track_checksum(&[1, 2]), track_checksum(&[1, 3]));
        assert_ne!(track_checksum(&[]), track_checksum(&[0, 1]));
        assert_eq!(track_checksum(&[]), track_checksum(&[0, 0]));
    }
}
