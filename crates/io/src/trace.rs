//! I/O event trace: one record per physical transfer the concurrent
//! engine services, with queue depth and per-op latency.
//!
//! Tracing is opt-in (see `IoEngineOpts::trace`) and deliberately cheap:
//! a worker appends one struct to a shared vector per op. Timestamps are
//! microseconds since the engine's creation, so traces from one run are
//! directly comparable across drives and processors.
//!
//! Export is hand-rolled JSONL / CSV — the records are flat, so neither
//! needs a serialisation framework.
//!
//! Since the observability layer landed, every event also carries the
//! compound superstep and EM [`Phase`] that were active when the op was
//! *submitted* (per-drive FIFO servicing makes the submit-time stamp
//! equal the barrier count at service time), so traces join directly
//! against span exports and per-superstep metrics.

use cgmio_obs::Phase;
use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// What a traced operation did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Demand read (counted as I/O by the cost model).
    Read,
    /// Write-behind write (counted when submitted).
    Write,
    /// Background prefetch (a hint; never counted).
    Prefetch,
    /// Prefetch hint dropped because the drive's queue was full — never
    /// serviced, recorded so cache-hit-rate analysis can see the hints
    /// that silently went missing.
    PrefetchDropped,
    /// Pipeline drain / fsync barrier.
    Flush,
    /// A deferred write-behind error discarded because the engine's
    /// bounded retained-error list was full — the failing write's own
    /// `Write` event precedes this one; this record keeps the discarded
    /// failure visible in post-mortems.
    WriteErrorDropped,
}

impl OpKind {
    /// Stable lower-case name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Read => "read",
            OpKind::Write => "write",
            OpKind::Prefetch => "prefetch",
            OpKind::PrefetchDropped => "prefetch_dropped",
            OpKind::Flush => "flush",
            OpKind::WriteErrorDropped => "write_error_dropped",
        }
    }
}

/// One serviced drive operation.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Global submission order across all drives of this engine.
    pub seq: u64,
    /// Simulated processor the engine belongs to.
    pub proc: usize,
    /// Drive that serviced the op.
    pub drive: usize,
    /// Operation kind.
    pub kind: OpKind,
    /// Track addressed (0 for flushes).
    pub track: u64,
    /// Payload bytes moved.
    pub bytes: usize,
    /// Ops still queued on this drive when this op started service.
    pub queue_depth: usize,
    /// Microseconds since engine creation when the op was submitted.
    pub submit_us: u64,
    /// When the drive worker started servicing it.
    pub start_us: u64,
    /// When service completed.
    pub end_us: u64,
    /// Whether a read/prefetch was satisfied from the prefetch cache.
    pub cache_hit: bool,
    /// Transient-fault retries this op needed before the recorded
    /// outcome (0 = first attempt stood).
    pub retries: u32,
    /// Compound superstep active when the op was submitted (counted by
    /// barrier flushes; 0 before the first barrier).
    pub superstep: u64,
    /// EM phase active when the op was submitted (`Phase::None` when no
    /// observability handle is attached).
    pub phase: Phase,
}

impl TraceEvent {
    /// Service time in microseconds.
    pub fn service_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }

    /// Queue wait (submission → service start) in microseconds — how
    /// long the op sat behind earlier work on its drive.
    pub fn queue_wait_us(&self) -> u64 {
        self.start_us.saturating_sub(self.submit_us)
    }

    /// Total latency (queueing + service) in microseconds.
    pub fn latency_us(&self) -> u64 {
        self.end_us.saturating_sub(self.submit_us)
    }
}

struct TraceShared {
    epoch: Instant,
    seq: AtomicU64,
    events: Mutex<Vec<TraceEvent>>,
}

/// Clonable handle onto an engine's trace buffer. Clone it *before*
/// boxing the storage into a `DiskArray`; the handle stays valid for the
/// engine's whole lifetime.
#[derive(Clone)]
pub struct TraceHandle(Arc<TraceShared>);

impl TraceHandle {
    /// Fresh, empty trace buffer; `epoch` is "now".
    pub fn new() -> Self {
        Self(Arc::new(TraceShared {
            epoch: Instant::now(),
            seq: AtomicU64::new(0),
            events: Mutex::new(Vec::new()),
        }))
    }

    /// Microseconds elapsed since the engine's epoch.
    pub fn now_us(&self) -> u64 {
        self.0.epoch.elapsed().as_micros() as u64
    }

    /// Claim the next global sequence number.
    pub fn next_seq(&self) -> u64 {
        self.0.seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Append one event.
    pub fn record(&self, ev: TraceEvent) {
        self.0.events.lock().unwrap().push(ev);
    }

    /// Copy out all events so far, sorted by submission order.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut evs = self.0.events.lock().unwrap().clone();
        evs.sort_by_key(|e| e.seq);
        evs
    }

    /// Move out all events so far (the buffer is left empty).
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut evs = std::mem::take(&mut *self.0.events.lock().unwrap());
        evs.sort_by_key(|e| e.seq);
        evs
    }
}

impl Default for TraceHandle {
    fn default() -> Self {
        Self::new()
    }
}

/// Write events as JSON Lines: one flat object per line.
pub fn write_jsonl(events: &[TraceEvent], w: &mut dyn Write) -> io::Result<()> {
    for e in events {
        writeln!(
            w,
            "{{\"seq\":{},\"proc\":{},\"drive\":{},\"kind\":\"{}\",\"track\":{},\
             \"bytes\":{},\"queue_depth\":{},\"submit_us\":{},\"start_us\":{},\
             \"end_us\":{},\"cache_hit\":{},\"retries\":{},\"superstep\":{},\
             \"phase\":\"{}\"}}",
            e.seq,
            e.proc,
            e.drive,
            e.kind.name(),
            e.track,
            e.bytes,
            e.queue_depth,
            e.submit_us,
            e.start_us,
            e.end_us,
            e.cache_hit,
            e.retries,
            e.superstep,
            e.phase.name()
        )?;
    }
    Ok(())
}

/// Write events as CSV with a header row.
pub fn write_csv(events: &[TraceEvent], w: &mut dyn Write) -> io::Result<()> {
    writeln!(
        w,
        "seq,proc,drive,kind,track,bytes,queue_depth,submit_us,start_us,end_us,cache_hit,\
         retries,superstep,phase"
    )?;
    for e in events {
        writeln!(
            w,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            e.seq,
            e.proc,
            e.drive,
            e.kind.name(),
            e.track,
            e.bytes,
            e.queue_depth,
            e.submit_us,
            e.start_us,
            e.end_us,
            e.cache_hit,
            e.retries,
            e.superstep,
            e.phase.name()
        )?;
    }
    Ok(())
}

/// Aggregate view of a trace (for quick reporting without spreadsheet
/// tooling).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Demand reads serviced.
    pub reads: usize,
    /// Writes serviced.
    pub writes: usize,
    /// Prefetches serviced.
    pub prefetches: usize,
    /// Reads + prefetches satisfied from the cache.
    pub cache_hits: usize,
    /// Total payload bytes moved.
    pub bytes: u64,
    /// Maximum queue depth observed at service start.
    pub max_queue_depth: usize,
    /// Mean demand-read latency (queue + service), microseconds.
    pub mean_read_latency_us: u64,
    /// Mean demand-read queue wait (submit → service start),
    /// microseconds. High queue wait with low service time means the
    /// drive is behind, not slow — the signal that a deeper pipeline (or
    /// more drives) would help.
    pub mean_read_queue_wait_us: u64,
    /// Mean demand-read service time (service start → completion),
    /// microseconds.
    pub mean_read_service_us: u64,
    /// Demand reads that waited in the queue longer than they took to
    /// service — operations the submitter out-ran. A depth sweep that
    /// doesn't move wall clock but grows `stalls` is queue-bound, not
    /// compute-bound.
    pub stalls: usize,
    /// Total transient-fault retries across all ops.
    pub retries: u64,
    /// Prefetch hints dropped on a full submission queue.
    pub prefetch_drops: usize,
    /// Deferred write errors discarded by the engine's bounded
    /// retained-error list.
    pub deferred_error_drops: usize,
    /// Number of distinct supersteps the trace spans (count of distinct
    /// `superstep` stamps observed).
    pub supersteps: usize,
}

/// Summarise a trace.
pub fn summarize(events: &[TraceEvent]) -> TraceSummary {
    let mut s = TraceSummary::default();
    let mut read_lat = 0u64;
    let mut read_wait = 0u64;
    let mut read_service = 0u64;
    let mut steps = std::collections::BTreeSet::new();
    for e in events {
        steps.insert(e.superstep);
        match e.kind {
            OpKind::Read => {
                s.reads += 1;
                read_lat += e.latency_us();
                read_wait += e.queue_wait_us();
                read_service += e.service_us();
                if e.queue_wait_us() > e.service_us() {
                    s.stalls += 1;
                }
            }
            OpKind::Write => s.writes += 1,
            OpKind::Prefetch => s.prefetches += 1,
            OpKind::PrefetchDropped => s.prefetch_drops += 1,
            OpKind::Flush => {}
            OpKind::WriteErrorDropped => s.deferred_error_drops += 1,
        }
        if e.cache_hit {
            s.cache_hits += 1;
        }
        s.bytes += e.bytes as u64;
        s.max_queue_depth = s.max_queue_depth.max(e.queue_depth);
        s.retries += e.retries as u64;
    }
    if s.reads > 0 {
        s.mean_read_latency_us = read_lat / s.reads as u64;
        s.mean_read_queue_wait_us = read_wait / s.reads as u64;
        s.mean_read_service_us = read_service / s.reads as u64;
    }
    s.supersteps = steps.len();
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, kind: OpKind, hit: bool) -> TraceEvent {
        TraceEvent {
            seq,
            proc: 0,
            drive: seq as usize % 2,
            kind,
            track: seq,
            bytes: 8,
            queue_depth: seq as usize,
            submit_us: 10 * seq,
            start_us: 10 * seq + 1,
            end_us: 10 * seq + 5,
            cache_hit: hit,
            retries: 0,
            superstep: seq / 2,
            phase: Phase::MatrixRead,
        }
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let mut buf = Vec::new();
        write_jsonl(&[ev(0, OpKind::Read, false), ev(1, OpKind::Write, false)], &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"seq\":0,"));
        assert!(lines[0].contains("\"kind\":\"read\""));
        assert!(lines[0].contains("\"superstep\":0"));
        assert!(lines[0].contains("\"phase\":\"matrix_read\""));
        assert!(lines[1].contains("\"kind\":\"write\""));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut buf = Vec::new();
        write_csv(&[ev(0, OpKind::Prefetch, true)], &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("seq,proc,drive,kind"));
        assert!(lines[0].ends_with("retries,superstep,phase"));
        assert!(lines[1].contains(",prefetch,"));
        assert!(lines[1].ends_with("true,0,0,matrix_read"));
    }

    #[test]
    fn summary_counts_and_latency() {
        let evs = vec![
            ev(0, OpKind::Read, false),
            ev(1, OpKind::Read, true),
            ev(2, OpKind::Write, false),
        ];
        let s = summarize(&evs);
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 1);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.bytes, 24);
        assert_eq!(s.max_queue_depth, 2);
        // latency = end - submit = 5 for every op
        assert_eq!(s.mean_read_latency_us, 5);
        // queue wait = start - submit = 1, service = end - start = 4
        assert_eq!(s.mean_read_queue_wait_us, 1);
        assert_eq!(s.mean_read_service_us, 4);
        assert_eq!(s.stalls, 0, "wait (1us) < service (4us): nothing stalled");
        // ev() stamps superstep = seq/2, so seqs 0..=2 span steps {0, 1}
        assert_eq!(s.supersteps, 2);
    }

    #[test]
    fn dropped_prefetches_are_counted_separately() {
        let evs = vec![ev(0, OpKind::Prefetch, false), ev(1, OpKind::PrefetchDropped, false)];
        let s = summarize(&evs);
        assert_eq!(s.prefetches, 1);
        assert_eq!(s.prefetch_drops, 1);
        let mut buf = Vec::new();
        write_jsonl(&evs, &mut buf).unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("\"kind\":\"prefetch_dropped\""));
    }

    #[test]
    fn handle_snapshot_sorts_by_seq() {
        let t = TraceHandle::new();
        t.record(ev(1, OpKind::Read, false));
        t.record(ev(0, OpKind::Write, false));
        let evs = t.snapshot();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].seq, 0);
        assert_eq!(t.drain().len(), 2);
        assert!(t.snapshot().is_empty());
    }
}
