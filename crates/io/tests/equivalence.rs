//! Backend equivalence: the in-memory, synchronous-file, and concurrent
//! backends must be indistinguishable through `DiskArray` — identical
//! block contents, identical `IoStats`, identical legality errors — for
//! arbitrary request sequences.
//!
//! Each random `u64` decodes to one operation (possibly illegal on
//! purpose), applied in lockstep to every backend.

use std::sync::Arc;

use cgmio_io::{ConcurrentStorage, Durability, IoEngineOpts};
use cgmio_pdm::testutil::TempDir;
use cgmio_pdm::{DiskArray, DiskGeometry, IoRequest, MemStorage, TrackAddr, TrackStorage};
use proptest::prelude::*;

const TRACKS: u64 = 6;

/// One decoded operation against a disk array.
#[derive(Debug, Clone)]
enum Op {
    /// Legal parallel write: one block on each of `k` distinct disks.
    Write { k: usize, track: u64, fill: u8 },
    /// Legal parallel read of `k` distinct disks.
    Read { k: usize, track: u64 },
    /// FIFO write queue with round-robin disks (exercises op packing).
    Fifo { n: usize, track: u64, fill: u8 },
    /// Illegal: same disk twice in one op.
    Conflict { disk: usize },
    /// Illegal: payload longer than a block.
    Oversized { disk: usize },
    /// Illegal: disk index out of range.
    BadDisk,
}

fn decode(x: u64, d: usize) -> Op {
    let track = (x >> 8) % TRACKS;
    let fill = (x >> 16) as u8;
    let k = 1 + ((x >> 24) as usize % d);
    match x % 8 {
        0..=2 => Op::Write { k, track, fill },
        3..=4 => Op::Read { k, track },
        5 => Op::Fifo { n: 1 + ((x >> 32) as usize % (3 * d)), track, fill },
        6 if d > 1 => Op::Conflict { disk: (x >> 40) as usize % d },
        6 => Op::Oversized { disk: 0 },
        _ => match (x >> 48) % 2 {
            0 => Op::Oversized { disk: (x >> 40) as usize % d },
            _ => Op::BadDisk,
        },
    }
}

/// Data read back by an op, or its error text.
type Outcome = Result<Vec<Vec<u8>>, String>;

/// Apply `op`; return a comparable outcome (data or error text).
fn apply(arr: &mut DiskArray, op: &Op, bb: usize, d: usize) -> Outcome {
    match op {
        Op::Write { k, track, fill } => {
            let payload: Vec<Vec<u8>> = (0..*k)
                .map(|i| vec![fill.wrapping_add(i as u8); 1 + (*fill as usize % bb)])
                .collect();
            let writes: Vec<(TrackAddr, &[u8])> =
                (0..*k).map(|i| (TrackAddr::new(i, *track), payload[i].as_slice())).collect();
            arr.parallel_write(&writes).map(|()| Vec::new()).map_err(|e| e.to_string())
        }
        Op::Read { k, track } => {
            let addrs: Vec<TrackAddr> = (0..*k).map(|i| TrackAddr::new(i, *track)).collect();
            arr.parallel_read(&addrs).map_err(|e| e.to_string())
        }
        Op::Fifo { n, track, fill } => {
            let q: Vec<IoRequest> = (0..*n)
                .map(|i| IoRequest {
                    addr: TrackAddr::new(i % d, (*track + (i / d) as u64) % TRACKS),
                    data: vec![fill.wrapping_add(i as u8); 1],
                })
                .collect();
            arr.write_fifo(&q).map(|ops| vec![vec![ops as u8]]).map_err(|e| e.to_string())
        }
        Op::Conflict { disk } => {
            let addrs = [TrackAddr::new(*disk, 0), TrackAddr::new(*disk, 1)];
            arr.parallel_read(&addrs).map_err(|e| e.to_string())
        }
        Op::Oversized { disk } => {
            let big = vec![1u8; bb + 1];
            arr.parallel_write(&[(TrackAddr::new(*disk, 0), big.as_slice())])
                .map(|()| Vec::new())
                .map_err(|e| e.to_string())
        }
        Op::BadDisk => arr.parallel_read(&[TrackAddr::new(d + 7, 0)]).map_err(|e| e.to_string()),
    }
}

/// Read back every track of every disk, one block per op, so content
/// comparison does not disturb relative stats (each backend pays the
/// same readout).
fn full_content(arr: &mut DiskArray, d: usize) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    for disk in 0..d {
        for track in 0..TRACKS {
            out.extend(arr.parallel_read(&[TrackAddr::new(disk, track)]).unwrap());
        }
    }
    out
}

fn backends(d: usize, bb: usize, dir: &TempDir) -> Vec<(&'static str, DiskArray)> {
    let geom = DiskGeometry::new(d, bb);
    let mem = DiskArray::new(geom);
    let sync_file = DiskArray::new_file_backed(geom, &dir.path().join("sync")).unwrap();
    let conc_mem = DiskArray::with_storage(
        geom,
        Box::new(ConcurrentStorage::new(
            Arc::new(MemStorage::new(geom)) as Arc<dyn TrackStorage>,
            d,
            IoEngineOpts { queue_depth: 4, ..Default::default() },
        )),
    );
    let conc_file = DiskArray::with_storage(
        geom,
        Box::new(
            ConcurrentStorage::open_dir(
                &dir.path().join("conc"),
                geom,
                IoEngineOpts { durability: Durability::SyncPerSuperstep, ..Default::default() },
            )
            .unwrap(),
        ),
    );
    vec![("mem", mem), ("sync-file", sync_file), ("conc-mem", conc_mem), ("conc-file", conc_file)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All four backends agree on results, errors, stats, and contents
    /// for the same request sequence.
    #[test]
    fn backends_are_equivalent(
        raw in proptest::collection::vec(any::<u64>(), 1..40),
        dsel in 0usize..3,
    ) {
        let d = [1, 2, 4][dsel];
        let bb = 8;
        let dir = TempDir::new("cgmio-equiv");
        let mut arrays = backends(d, bb, &dir);

        for x in &raw {
            let op = decode(*x, d);
            let mut outcomes: Vec<(&str, Outcome)> = Vec::new();
            for (name, arr) in arrays.iter_mut() {
                outcomes.push((name, apply(arr, &op, bb, d)));
            }
            let (base_name, base) = &outcomes[0];
            for (name, got) in &outcomes[1..] {
                prop_assert_eq!(
                    got, base,
                    "op {:?}: backend {} disagrees with {}", op, name, base_name
                );
            }
        }

        // cost-model equality: every counter matches the reference
        let base_stats = arrays[0].1.stats().clone();
        for (name, arr) in arrays.iter().skip(1) {
            prop_assert_eq!(
                arr.stats(), &base_stats,
                "IoStats diverged on backend {}", name
            );
        }

        // durable state equality: every track byte-identical
        let base_content = full_content(&mut arrays[0].1, d);
        for (name, arr) in arrays.iter_mut().skip(1) {
            let content = full_content(arr, d);
            prop_assert_eq!(
                &content, &base_content,
                "track contents diverged on backend {}", name
            );
        }

        // allocation view agrees too
        let base_used = arrays[0].1.tracks_used();
        for (name, arr) in arrays.iter().skip(1) {
            prop_assert_eq!(arr.tracks_used(), base_used.clone(), "tracks_used diverged on {}", name);
        }
    }
}
