//! Proof that the concurrent engine really overlaps the `D` block
//! transfers of one legal parallel operation.
//!
//! The inner storage is instrumented so every `read_track` *blocks*
//! until all `D` drives have a read in flight simultaneously. A
//! sequential backend deadlocks on such a barrier (it issues transfers
//! one at a time); the per-drive worker pool sails through. A timeout
//! converts the would-be deadlock into a test failure instead of a hang.

use std::io;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use cgmio_io::{ConcurrentStorage, IoEngineOpts};
use cgmio_pdm::{DiskArray, DiskGeometry, TrackAddr, TrackStorage};

const TIMEOUT: Duration = Duration::from_secs(10);

/// Blocks each `read_track` until `want` reads are in flight at once.
struct RendezvousReads {
    want: usize,
    in_flight: Mutex<usize>,
    all_here: Condvar,
    /// Highest number of simultaneously in-flight reads ever observed.
    peak: Mutex<usize>,
}

impl RendezvousReads {
    fn new(want: usize) -> Self {
        Self { want, in_flight: Mutex::new(0), all_here: Condvar::new(), peak: Mutex::new(0) }
    }
}

impl TrackStorage for RendezvousReads {
    fn read_track(&self, disk: usize, track: u64) -> io::Result<Vec<u8>> {
        let mut n = self.in_flight.lock().unwrap();
        *n += 1;
        {
            let mut peak = self.peak.lock().unwrap();
            *peak = (*peak).max(*n);
        }
        self.all_here.notify_all();
        while *n < self.want {
            let (guard, res) = self.all_here.wait_timeout(n, TIMEOUT).unwrap();
            n = guard;
            assert!(
                !res.timed_out(),
                "transfers never overlapped: only {} of {} reads in flight",
                *n,
                self.want
            );
        }
        // Leave the counter at `want`: every transfer of the op observed
        // full concurrency, which is what the test asserts via `peak`.
        drop(n);
        Ok(vec![disk as u8, track as u8])
    }

    fn write_track(&self, _disk: usize, _track: u64, _data: &[u8]) -> io::Result<()> {
        Ok(())
    }

    fn tracks_used(&self) -> Vec<u64> {
        vec![0; self.want]
    }
}

#[test]
fn one_parallel_op_overlaps_d_transfers() {
    for d in [2usize, 4] {
        let inner = Arc::new(RendezvousReads::new(d));
        let geom = DiskGeometry::new(d, 2);
        let storage = ConcurrentStorage::new(
            inner.clone() as Arc<dyn TrackStorage>,
            d,
            IoEngineOpts::default(),
        );
        let mut arr = DiskArray::with_storage(geom, Box::new(storage));

        let addrs: Vec<TrackAddr> = (0..d).map(|k| TrackAddr::new(k, 5)).collect();
        let blocks = arr.parallel_read(&addrs).unwrap();

        // request-order results survive the concurrent servicing
        for (k, b) in blocks.iter().enumerate() {
            assert_eq!(b, &vec![k as u8, 5]);
        }
        assert_eq!(
            *inner.peak.lock().unwrap(),
            d,
            "all {d} transfers of the op must be in flight simultaneously"
        );
        // one parallel op, counted once per block + one full op
        assert_eq!(arr.stats().read_ops, 1);
        assert_eq!(arr.stats().blocks_read, d as u64);
    }
}

/// Write-behind: a parallel write returns before the physical writes
/// complete, and flush() blocks until they all have.
#[test]
fn write_behind_returns_before_transfers_complete() {
    struct SlowWrites {
        release: Mutex<bool>,
        cv: Condvar,
        done: Mutex<usize>,
    }
    impl TrackStorage for SlowWrites {
        fn read_track(&self, _d: usize, _t: u64) -> io::Result<Vec<u8>> {
            Ok(vec![0; 2])
        }
        fn write_track(&self, _d: usize, _t: u64, _data: &[u8]) -> io::Result<()> {
            let mut go = self.release.lock().unwrap();
            while !*go {
                let (guard, res) = self.cv.wait_timeout(go, TIMEOUT).unwrap();
                go = guard;
                assert!(!res.timed_out(), "writes were never released");
            }
            drop(go);
            *self.done.lock().unwrap() += 1;
            Ok(())
        }
        fn tracks_used(&self) -> Vec<u64> {
            vec![0; 2]
        }
    }

    let inner = Arc::new(SlowWrites {
        release: Mutex::new(false),
        cv: Condvar::new(),
        done: Mutex::new(0),
    });
    let geom = DiskGeometry::new(2, 2);
    let storage =
        ConcurrentStorage::new(inner.clone() as Arc<dyn TrackStorage>, 2, IoEngineOpts::default());
    let mut arr = DiskArray::with_storage(geom, Box::new(storage));

    // returns immediately even though the physical writes are stuck
    arr.parallel_write(&[(TrackAddr::new(0, 0), &[1u8][..]), (TrackAddr::new(1, 0), &[2u8][..])])
        .unwrap();
    assert_eq!(*inner.done.lock().unwrap(), 0, "write-behind must not wait for the disk");

    // release the drives; flush must now wait for both writes
    *inner.release.lock().unwrap() = true;
    inner.cv.notify_all();
    arr.flush(false).unwrap();
    assert_eq!(*inner.done.lock().unwrap(), 2);
}
