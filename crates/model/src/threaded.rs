//! Multi-threaded CGM runner: `p` OS threads stand in for the `p` real
//! processors of the paper's target machine, with crossbeam channels as
//! the interconnect.
//!
//! Virtual processors are assigned to threads in contiguous blocks (the
//! same assignment the parallel EM simulation uses), supersteps are
//! globally synchronous, and the runner counts the items that actually
//! cross a thread boundary — the `g′`-chargeable traffic of the EM-CGM
//! cost model.

use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::cost::{CommCosts, RoundCost};
use crate::program::{CgmProgram, Incoming, Outbox, RoundCtx, Status};
use crate::{ModelError, DEFAULT_ROUND_LIMIT};

/// Multi-threaded runner configuration.
#[derive(Debug, Clone)]
pub struct ThreadedRunner {
    /// Number of worker threads (real processors). Clamped to `v`.
    pub p: usize,
    /// Livelock guard.
    pub round_limit: usize,
}

impl ThreadedRunner {
    /// Runner with `p` threads and the default round limit.
    pub fn new(p: usize) -> Self {
        Self { p, round_limit: DEFAULT_ROUND_LIMIT }
    }
}

/// Outcome of a threaded run.
#[derive(Debug, Clone)]
pub struct ThreadedRunReport {
    /// h-relation accounting, identical in shape to [`crate::DirectRunner`]'s.
    pub costs: CommCosts,
    /// Items that crossed a thread (real-processor) boundary.
    pub cross_thread_items: u64,
    /// Wall-clock time of the superstep loop.
    pub wall: Duration,
}

/// Per-round report a worker sends to the coordinator.
struct RoundCtl {
    n_done: usize,
    n_procs: usize,
    sent_total: usize,
    max_sent: usize,
    max_received: usize,
    max_message: usize,
    min_message: usize,
    cross_items: u64,
}

enum Decision {
    Continue,
    Stop,
    Fail(ModelError),
}

/// Contiguous block of virtual processors owned by real processor `t`.
pub fn block_range(v: usize, p: usize, t: usize) -> std::ops::Range<usize> {
    let base = v / p;
    let extra = v % p;
    let start = t * base + t.min(extra);
    let len = base + usize::from(t < extra);
    start..start + len
}

/// Which real processor owns virtual processor `pid`.
pub fn owner_of(v: usize, p: usize, pid: usize) -> usize {
    // Inverse of `block_range`.
    let base = v / p;
    let extra = v % p;
    let boundary = extra * (base + 1);
    if pid < boundary {
        pid / (base + 1)
    } else {
        extra + (pid - boundary) / base
    }
}

impl ThreadedRunner {
    /// Run `prog` on the given initial states across `p` threads.
    pub fn run<P: CgmProgram>(
        &self,
        prog: &P,
        states: Vec<P::State>,
    ) -> Result<(Vec<P::State>, ThreadedRunReport), ModelError> {
        let v = states.len();
        assert!(v > 0, "need at least one virtual processor");
        let p = self.p.clamp(1, v);
        let round_limit = self.round_limit;

        // Data channels: data_tx[i][j] sends from thread i to thread j.
        let mut data_tx: Vec<Vec<Sender<Packet<P::Msg>>>> = (0..p).map(|_| Vec::new()).collect();
        let mut data_rx: Vec<Receiver<Packet<P::Msg>>> = Vec::with_capacity(p);
        {
            let mut txs_per_dst: Vec<Vec<Sender<Packet<P::Msg>>>> =
                (0..p).map(|_| Vec::new()).collect();
            for txs in txs_per_dst.iter_mut() {
                let (tx, rx) = unbounded();
                data_rx.push(rx);
                for _i in 0..p {
                    txs.push(tx.clone());
                }
            }
            // reorganise: data_tx[i][j]
            for (i, row) in data_tx.iter_mut().enumerate() {
                for txs in txs_per_dst.iter() {
                    row.push(txs[i].clone());
                }
            }
        }
        let (ctrl_tx, ctrl_rx) = unbounded::<(usize, RoundCtl)>();
        let mut dec_tx: Vec<Sender<Decision>> = Vec::with_capacity(p);
        let mut dec_rx: Vec<Receiver<Decision>> = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = unbounded();
            dec_tx.push(tx);
            dec_rx.push(rx);
        }

        // Split the states into per-thread blocks.
        let mut blocks: Vec<Vec<P::State>> = Vec::with_capacity(p);
        {
            let mut it = states.into_iter();
            for t in 0..p {
                let r = block_range(v, p, t);
                blocks.push(it.by_ref().take(r.len()).collect());
            }
        }

        let start = Instant::now();
        let mut costs = CommCosts::default();
        let mut cross_total: u64 = 0;
        let mut run_error: Option<ModelError> = None;

        let mut finished: Vec<Option<Vec<P::State>>> = (0..p).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for (t, block) in blocks.into_iter().enumerate() {
                let my_tx = std::mem::take(&mut data_tx[t]);
                let my_rx = data_rx[t].clone();
                let my_ctrl = ctrl_tx.clone();
                let my_dec = dec_rx[t].clone();
                handles.push(scope.spawn(move || {
                    worker::<P>(prog, t, v, p, block, my_tx, my_rx, my_ctrl, my_dec, round_limit)
                }));
            }
            drop(ctrl_tx);

            // Coordinator loop.
            for round in 0..=round_limit {
                let mut ctl = RoundCtl {
                    n_done: 0,
                    n_procs: 0,
                    sent_total: 0,
                    max_sent: 0,
                    max_received: 0,
                    max_message: 0,
                    min_message: usize::MAX,
                    cross_items: 0,
                };
                for _ in 0..p {
                    let (_t, c) = ctrl_rx.recv().expect("worker died");
                    ctl.n_done += c.n_done;
                    ctl.n_procs += c.n_procs;
                    ctl.sent_total += c.sent_total;
                    ctl.max_sent = ctl.max_sent.max(c.max_sent);
                    ctl.max_received = ctl.max_received.max(c.max_received);
                    ctl.max_message = ctl.max_message.max(c.max_message);
                    if c.min_message > 0 {
                        ctl.min_message = ctl.min_message.min(c.min_message);
                    }
                    ctl.cross_items += c.cross_items;
                }
                cross_total += ctl.cross_items;
                let sent_any = ctl.sent_total > 0;
                if sent_any || ctl.n_done < v {
                    costs.rounds.push(RoundCost {
                        max_sent: ctl.max_sent,
                        max_received: ctl.max_received,
                        total_items: ctl.sent_total,
                        max_message: ctl.max_message,
                        min_message: if ctl.min_message == usize::MAX {
                            0
                        } else {
                            ctl.min_message
                        },
                    });
                }
                let decision = if ctl.n_done == v {
                    if sent_any {
                        Decision::Fail(ModelError::MessagesAfterDone)
                    } else {
                        Decision::Stop
                    }
                } else if ctl.n_done != 0 {
                    Decision::Fail(ModelError::StatusDisagreement { round })
                } else if round == round_limit {
                    Decision::Fail(ModelError::RoundLimit(round_limit))
                } else {
                    Decision::Continue
                };
                let stop = !matches!(decision, Decision::Continue);
                if let Decision::Fail(ref e) = decision {
                    run_error = Some(e.clone());
                }
                for tx in &dec_tx {
                    tx.send(match decision {
                        Decision::Continue => Decision::Continue,
                        Decision::Stop => Decision::Stop,
                        Decision::Fail(ref e) => Decision::Fail(e.clone()),
                    })
                    .expect("worker died");
                }
                if stop {
                    break;
                }
            }

            for (t, h) in handles.into_iter().enumerate() {
                finished[t] = Some(h.join().expect("worker panicked"));
            }
        });

        if let Some(e) = run_error {
            return Err(e);
        }
        let mut all = Vec::with_capacity(v);
        for block in finished.into_iter() {
            all.extend(block.expect("missing worker result"));
        }
        Ok((
            all,
            ThreadedRunReport { costs, cross_thread_items: cross_total, wall: start.elapsed() },
        ))
    }
}

/// One round's worth of messages from one thread to another:
/// `(src, dst, items)` triples, at most one per (src, dst) pair.
type Packet<M> = Vec<(usize, usize, Vec<M>)>;

#[allow(clippy::too_many_arguments)]
fn worker<P: CgmProgram>(
    prog: &P,
    t: usize,
    v: usize,
    p: usize,
    mut states: Vec<P::State>,
    data_tx: Vec<Sender<Packet<P::Msg>>>,
    data_rx: Receiver<Packet<P::Msg>>,
    ctrl: Sender<(usize, RoundCtl)>,
    dec: Receiver<Decision>,
    _round_limit: usize,
) -> Vec<P::State> {
    let my_range = block_range(v, p, t);
    let n_local = my_range.len();
    let mut inboxes: Vec<Incoming<P::Msg>> = (0..n_local).map(|_| Incoming::empty(v)).collect();

    let mut round = 0usize;
    loop {
        let mut n_done = 0;
        let mut ctl = RoundCtl {
            n_done: 0,
            n_procs: n_local,
            sent_total: 0,
            max_sent: 0,
            max_received: 0,
            max_message: 0,
            min_message: usize::MAX,
            cross_items: 0,
        };

        // Compute phase.
        let mut packets: Vec<Packet<P::Msg>> = (0..p).map(|_| Vec::new()).collect();
        let old_inboxes = std::mem::take(&mut inboxes);
        for (k, (state, inbox)) in states.iter_mut().zip(old_inboxes).enumerate() {
            let pid = my_range.start + k;
            let mut outbox = Outbox::new(v);
            let mut ctx = RoundCtx { pid, v, round, incoming: inbox, outbox: &mut outbox };
            if prog.round(&mut ctx, state) == Status::Done {
                n_done += 1;
            }
            let per_dst = outbox.into_per_dst();
            let sent: usize = per_dst.iter().map(Vec::len).sum();
            ctl.sent_total += sent;
            ctl.max_sent = ctl.max_sent.max(sent);
            for (dst, msg) in per_dst.into_iter().enumerate() {
                if msg.is_empty() {
                    continue;
                }
                ctl.max_message = ctl.max_message.max(msg.len());
                ctl.min_message = ctl.min_message.min(msg.len());
                let owner = owner_of(v, p, dst);
                if owner != t {
                    ctl.cross_items += msg.len() as u64;
                }
                packets[owner].push((pid, dst, msg));
            }
        }
        ctl.n_done = n_done;

        // Exchange phase: one packet to every thread (including self).
        for (j, tx) in data_tx.iter().enumerate() {
            tx.send(std::mem::take(&mut packets[j])).expect("peer died");
        }
        let mut per_local: Vec<Vec<Vec<P::Msg>>> =
            (0..n_local).map(|_| (0..v).map(|_| Vec::new()).collect()).collect();
        for _ in 0..p {
            for (src, dst, msg) in data_rx.recv().expect("peer died") {
                per_local[dst - my_range.start][src] = msg;
            }
        }
        for (k, per_src) in per_local.into_iter().enumerate() {
            let recv_total: usize = per_src.iter().map(Vec::len).sum();
            ctl.max_received = ctl.max_received.max(recv_total);
            inboxes.push(Incoming::new(per_src));
            let _ = k;
        }

        ctrl.send((t, ctl)).expect("coordinator died");
        match dec.recv().expect("coordinator died") {
            Decision::Continue => round += 1,
            Decision::Stop | Decision::Fail(_) => return states,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo::{AllToAll, PrefixSum, TokenRing};
    use crate::DirectRunner;

    #[test]
    fn block_range_partitions() {
        for v in [1usize, 2, 5, 7, 16] {
            for p in 1..=v {
                let mut covered = vec![false; v];
                for t in 0..p {
                    for pid in block_range(v, p, t) {
                        assert!(!covered[pid]);
                        covered[pid] = true;
                        assert_eq!(owner_of(v, p, pid), t, "v={v} p={p} pid={pid}");
                    }
                }
                assert!(covered.into_iter().all(|c| c));
            }
        }
    }

    #[test]
    fn matches_direct_runner_on_all_to_all() {
        let v = 8;
        let prog = AllToAll { items_per_pair: 4 };
        let init = || (0..v).map(|_| Vec::new()).collect::<Vec<Vec<u64>>>();
        let (d, dc) = DirectRunner::default().run(&prog, init()).unwrap();
        for p in [1, 2, 3, 8] {
            let (t, rep) = ThreadedRunner::new(p).run(&prog, init()).unwrap();
            assert_eq!(t, d, "p={p}");
            assert_eq!(rep.costs.lambda(), dc.lambda());
            assert_eq!(rep.costs.max_h(), dc.max_h());
            assert_eq!(rep.costs.total_items(), dc.total_items());
        }
    }

    #[test]
    fn matches_direct_runner_on_prefix_sum() {
        let v = 6;
        let init = || {
            (0..v as u64).map(|i| ((0..=i).collect::<Vec<u64>>(), Vec::new())).collect::<Vec<_>>()
        };
        let (d, _) = DirectRunner::default().run(&PrefixSum, init()).unwrap();
        let (t, _) = ThreadedRunner::new(3).run(&PrefixSum, init()).unwrap();
        assert_eq!(t, d);
    }

    #[test]
    fn cross_thread_items_counted() {
        let v = 4;
        let prog = TokenRing { rounds: 4 };
        let init = || (0..v as u64).map(|i| vec![i]).collect::<Vec<_>>();
        // p = 1: no traffic crosses a thread boundary
        let (_, rep1) = ThreadedRunner::new(1).run(&prog, init()).unwrap();
        assert_eq!(rep1.cross_thread_items, 0);
        // p = 4: every hop crosses
        let (_, rep4) = ThreadedRunner::new(4).run(&prog, init()).unwrap();
        assert_eq!(rep4.cross_thread_items, (v * 4) as u64);
        // p = 2: half the hops cross (ring 0->1->2->3->0; hops 1->2 and 3->0 cross)
        let (_, rep2) = ThreadedRunner::new(2).run(&prog, init()).unwrap();
        assert_eq!(rep2.cross_thread_items, (2 * 4) as u64);
    }

    #[test]
    fn p_larger_than_v_is_clamped() {
        let v = 3;
        let prog = TokenRing { rounds: 2 };
        let init: Vec<Vec<u64>> = (0..v as u64).map(|i| vec![i]).collect();
        let (fin, _) = ThreadedRunner::new(64).run(&prog, init).unwrap();
        assert_eq!(fin.len(), v);
    }

    #[test]
    fn error_propagates_from_threads() {
        struct Half;
        impl CgmProgram for Half {
            type Msg = u64;
            type State = u64;
            fn round(&self, ctx: &mut RoundCtx<'_, u64>, _s: &mut u64) -> Status {
                if ctx.pid == 0 {
                    Status::Done
                } else {
                    Status::Continue
                }
            }
        }
        let e = ThreadedRunner::new(2).run(&Half, vec![0, 0]).unwrap_err();
        assert_eq!(e, ModelError::StatusDisagreement { round: 0 });
    }
}
