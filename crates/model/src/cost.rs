//! h-relation and round accounting.
//!
//! The simulation theorems are parameterised by `λ` (rounds), `h`
//! (per-processor communication volume per round) and `μ` (context
//! size). Runners measure all three so experiments can verify the
//! theorems' premises instead of assuming them.

/// Communication cost of a single round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundCost {
    /// Maximum items sent by any processor this round.
    pub max_sent: usize,
    /// Maximum items received by any processor this round.
    pub max_received: usize,
    /// Total items moved this round.
    pub total_items: usize,
    /// Largest single (src → dst) message, in items.
    pub max_message: usize,
    /// Smallest non-empty (src → dst) message, in items (0 if none sent).
    pub min_message: usize,
}

impl RoundCost {
    /// The h of this round's h-relation: max over processors of
    /// items sent or received.
    pub fn h(&self) -> usize {
        self.max_sent.max(self.max_received)
    }
}

/// Aggregated costs of a full CGM run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommCosts {
    /// Per-round costs, in order (`λ = rounds.len()`).
    pub rounds: Vec<RoundCost>,
    /// Largest context observed (bytes) — `μ`, measured by the EM
    /// runners; 0 for in-memory runners that never encode contexts.
    pub max_context_bytes: usize,
}

impl CommCosts {
    /// Number of communication rounds (`λ`).
    pub fn lambda(&self) -> usize {
        self.rounds.len()
    }

    /// Maximum h over all rounds.
    pub fn max_h(&self) -> usize {
        self.rounds.iter().map(RoundCost::h).max().unwrap_or(0)
    }

    /// Total items communicated over the whole run.
    pub fn total_items(&self) -> usize {
        self.rounds.iter().map(|r| r.total_items).sum()
    }

    /// Largest single message observed over the whole run.
    pub fn max_message(&self) -> usize {
        self.rounds.iter().map(|r| r.max_message).max().unwrap_or(0)
    }

    /// Smallest non-empty message observed over the whole run (0 when no
    /// messages at all were sent).
    pub fn min_message(&self) -> usize {
        self.rounds.iter().filter(|r| r.max_message > 0).map(|r| r.min_message).min().unwrap_or(0)
    }
}

/// Theorem 2's predicted parallel I/O operations for a full EM-CGM run:
/// `λ · v·μ / (D·B)` — each of the `λ` compound supersteps swaps `v`
/// contexts of up to `μ` bytes through `D` disks in blocks of `B`
/// bytes (message traffic is bounded by the same term under the
/// theorem's premises, so this is the per-constant-factor shape of the
/// whole run's demand).
///
/// This is the primitive the job service's admission controller prices
/// jobs with: `λ` and `μ` come from a dry-run measurement
/// (`cgmio_core::measure_requirements`) or from a prior run's
/// [`CommCosts`], and the result is compared against the pool's
/// in-flight I/O budget *before* any disk is touched. The `audit`
/// experiment checks measured ops stay within a small constant of this
/// value.
pub fn theorem2_predicted_ops(
    lambda: usize,
    v: usize,
    max_ctx_bytes: usize,
    num_disks: usize,
    block_bytes: usize,
) -> f64 {
    assert!(num_disks > 0 && block_bytes > 0, "degenerate disk geometry");
    lambda as f64 * v as f64 * max_ctx_bytes as f64 / (num_disks as f64 * block_bytes as f64)
}

impl CommCosts {
    /// [`theorem2_predicted_ops`] evaluated with this run's measured
    /// `λ` and `μ` on a `(D, B)` disk geometry.
    pub fn predicted_ops(&self, v: usize, num_disks: usize, block_bytes: usize) -> f64 {
        theorem2_predicted_ops(self.lambda(), v, self.max_context_bytes, num_disks, block_bytes)
    }
}

/// Compute a [`RoundCost`] from the full `v × v` message matrix of one
/// round (`matrix[src][dst]` = message length in items).
pub fn round_cost_from_matrix(matrix: &[Vec<usize>]) -> RoundCost {
    let v = matrix.len();
    let mut cost = RoundCost { min_message: usize::MAX, ..RoundCost::default() };
    let mut recv = vec![0usize; v];
    for (src, row) in matrix.iter().enumerate() {
        debug_assert_eq!(row.len(), v);
        let sent: usize = row.iter().sum();
        cost.max_sent = cost.max_sent.max(sent);
        cost.total_items += sent;
        let _ = src;
        for (dst, &len) in row.iter().enumerate() {
            recv[dst] += len;
            if len > 0 {
                cost.max_message = cost.max_message.max(len);
                cost.min_message = cost.min_message.min(len);
            }
        }
    }
    cost.max_received = recv.into_iter().max().unwrap_or(0);
    if cost.min_message == usize::MAX {
        cost.min_message = 0;
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_cost() {
        // 3 procs; proc 0 sends 2->1 and 3->2; proc 2 sends 5->0
        let m = vec![vec![0, 2, 3], vec![0, 0, 0], vec![5, 0, 0]];
        let c = round_cost_from_matrix(&m);
        assert_eq!(c.max_sent, 5);
        assert_eq!(c.max_received, 5);
        assert_eq!(c.total_items, 10);
        assert_eq!(c.max_message, 5);
        assert_eq!(c.min_message, 2);
        assert_eq!(c.h(), 5);
    }

    #[test]
    fn empty_matrix_cost() {
        let m = vec![vec![0, 0], vec![0, 0]];
        let c = round_cost_from_matrix(&m);
        assert_eq!(c, RoundCost::default());
    }

    #[test]
    fn theorem2_prediction_shape() {
        // λ=3, v=16, μ=2048, D=2, B=2048: 3·16·2048/(2·2048) = 24.
        assert_eq!(theorem2_predicted_ops(3, 16, 2048, 2, 2048), 24.0);
        // Doubling the disks halves the predicted ops.
        assert_eq!(theorem2_predicted_ops(3, 16, 2048, 4, 2048), 12.0);
        // Zero rounds predict zero I/O.
        assert_eq!(theorem2_predicted_ops(0, 16, 2048, 2, 2048), 0.0);
        let costs = CommCosts { rounds: vec![RoundCost::default(); 3], max_context_bytes: 2048 };
        assert_eq!(costs.predicted_ops(16, 2, 2048), 24.0);
    }

    #[test]
    fn aggregate() {
        let mut costs = CommCosts::default();
        costs.rounds.push(RoundCost {
            max_sent: 4,
            max_received: 2,
            total_items: 6,
            max_message: 4,
            min_message: 2,
        });
        costs.rounds.push(RoundCost {
            max_sent: 1,
            max_received: 8,
            total_items: 9,
            max_message: 3,
            min_message: 1,
        });
        assert_eq!(costs.lambda(), 2);
        assert_eq!(costs.max_h(), 8);
        assert_eq!(costs.total_items(), 15);
        assert_eq!(costs.max_message(), 4);
        assert_eq!(costs.min_message(), 1);
    }
}
