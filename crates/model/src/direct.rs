//! Sequential in-memory CGM runner — the reference semantics.
//!
//! Every other runner (threaded, external-memory sequential,
//! external-memory parallel) must produce final states identical to this
//! one; the integration tests assert exactly that.

use crate::cost::{round_cost_from_matrix, CommCosts};
use crate::program::{CgmProgram, Incoming, Outbox, RoundCtx, Status};
use crate::{ModelError, DEFAULT_ROUND_LIMIT};

/// Runs all `v` virtual processors in a single thread, round by round.
#[derive(Debug, Clone)]
pub struct DirectRunner {
    /// Abort after this many rounds (livelock guard).
    pub round_limit: usize,
}

impl Default for DirectRunner {
    fn default() -> Self {
        Self { round_limit: DEFAULT_ROUND_LIMIT }
    }
}

impl DirectRunner {
    /// Run `prog` on the given initial per-processor states (`v =
    /// states.len()`). Returns final states and measured costs.
    pub fn run<P: CgmProgram>(
        &self,
        prog: &P,
        mut states: Vec<P::State>,
    ) -> Result<(Vec<P::State>, CommCosts), ModelError> {
        let v = states.len();
        let mut inboxes: Vec<Incoming<P::Msg>> = (0..v).map(|_| Incoming::empty(v)).collect();
        let mut costs = CommCosts::default();

        for round in 0..self.round_limit {
            let mut outs: Vec<Vec<Vec<P::Msg>>> = Vec::with_capacity(v);
            let mut n_done = 0usize;

            let old_inboxes = std::mem::take(&mut inboxes);
            for (pid, (state, inbox)) in states.iter_mut().zip(old_inboxes).enumerate() {
                let mut outbox = Outbox::new(v);
                let mut ctx = RoundCtx { pid, v, round, incoming: inbox, outbox: &mut outbox };
                match prog.round(&mut ctx, state) {
                    Status::Done => n_done += 1,
                    Status::Continue => {}
                }
                outs.push(outbox.into_per_dst());
            }

            // Cost accounting from the full message matrix.
            let matrix: Vec<Vec<usize>> =
                outs.iter().map(|per_dst| per_dst.iter().map(Vec::len).collect()).collect();
            let round_cost = round_cost_from_matrix(&matrix);
            let sent_any = round_cost.total_items > 0;
            if sent_any || n_done < v {
                costs.rounds.push(round_cost);
            }

            if n_done == v {
                if sent_any {
                    return Err(ModelError::MessagesAfterDone);
                }
                return Ok((states, costs));
            }
            if n_done != 0 {
                return Err(ModelError::StatusDisagreement { round });
            }

            // Route: inbox[dst].from(src) = outs[src][dst].
            let mut per_dst_per_src: Vec<Vec<Vec<P::Msg>>> =
                (0..v).map(|_| Vec::with_capacity(v)).collect();
            for out in outs {
                for (dst, msg) in out.into_iter().enumerate() {
                    per_dst_per_src[dst].push(msg);
                }
            }
            inboxes = per_dst_per_src.into_iter().map(Incoming::new).collect();
        }
        Err(ModelError::RoundLimit(self.round_limit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo::{AllToAll, PrefixSum, TokenRing};

    #[test]
    fn token_ring_rotates() {
        let v = 5;
        let prog = TokenRing { rounds: 3 };
        let states: Vec<Vec<u64>> = (0..v as u64).map(|i| vec![i]).collect();
        let (fin, costs) = DirectRunner::default().run(&prog, states).unwrap();
        // token i ends up 3 positions clockwise: proc j holds (j - 3) mod v
        for (j, s) in fin.iter().enumerate() {
            assert_eq!(s[0], ((j + v - 3) % v) as u64);
        }
        assert_eq!(costs.lambda(), 3);
        assert_eq!(costs.max_h(), 1);
    }

    #[test]
    fn prefix_sum_is_correct() {
        let v = 4;
        let vals: Vec<Vec<u64>> = vec![vec![1, 2], vec![3], vec![], vec![4, 5, 6]];
        let states: Vec<(Vec<u64>, Vec<u64>)> =
            vals.iter().map(|xs| (xs.clone(), Vec::new())).collect();
        let (fin, costs) = DirectRunner::default().run(&PrefixSum, states).unwrap();
        let mut expect = Vec::new();
        let mut acc = 0;
        for xs in &vals {
            for &x in xs {
                acc += x;
                expect.push(acc);
            }
        }
        let got: Vec<u64> = fin.iter().flat_map(|(_, pre)| pre.iter().copied()).collect();
        assert_eq!(got, expect);
        assert_eq!(costs.lambda(), 1, "one communication round");
        let _ = v;
    }

    #[test]
    fn all_to_all_delivers_in_source_order() {
        let v = 6;
        let states: Vec<Vec<u64>> = (0..v).map(|_| Vec::new()).collect();
        let (fin, costs) =
            DirectRunner::default().run(&AllToAll { items_per_pair: 3 }, states).unwrap();
        for (dst, s) in fin.iter().enumerate() {
            let expect: Vec<u64> = (0..v)
                .flat_map(|src| (0..3).map(move |k| (src * v + dst) as u64 * 10 + k))
                .collect();
            assert_eq!(s, &expect, "dst {dst}");
        }
        assert_eq!(costs.max_h(), 3 * v);
        assert_eq!(costs.rounds[0].min_message, 3);
        assert_eq!(costs.rounds[0].max_message, 3);
    }

    #[test]
    fn round_limit_guards_livelock() {
        struct Forever;
        impl CgmProgram for Forever {
            type Msg = u64;
            type State = u64;
            fn round(&self, _ctx: &mut RoundCtx<'_, u64>, _s: &mut u64) -> Status {
                Status::Continue
            }
        }
        let r = DirectRunner { round_limit: 10 };
        let e = r.run(&Forever, vec![0, 0]).unwrap_err();
        assert_eq!(e, ModelError::RoundLimit(10));
    }

    #[test]
    fn disagreement_detected() {
        struct Half;
        impl CgmProgram for Half {
            type Msg = u64;
            type State = u64;
            fn round(&self, ctx: &mut RoundCtx<'_, u64>, _s: &mut u64) -> Status {
                if ctx.pid == 0 {
                    Status::Done
                } else {
                    Status::Continue
                }
            }
        }
        let e = DirectRunner::default().run(&Half, vec![0, 0]).unwrap_err();
        assert_eq!(e, ModelError::StatusDisagreement { round: 0 });
    }

    #[test]
    fn messages_after_done_detected() {
        struct Chatty;
        impl CgmProgram for Chatty {
            type Msg = u64;
            type State = u64;
            fn round(&self, ctx: &mut RoundCtx<'_, u64>, _s: &mut u64) -> Status {
                ctx.push(0, 1);
                Status::Done
            }
        }
        let e = DirectRunner::default().run(&Chatty, vec![0, 0]).unwrap_err();
        assert_eq!(e, ModelError::MessagesAfterDone);
    }
}
