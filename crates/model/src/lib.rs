//! # cgmio-model — the Coarse Grained Multicomputer machine model
//!
//! The CGM model (Dehne et al., 1993) is a BSP-like machine with only two
//! parameters: `n` (problem size) and `v` (processors), each processor
//! holding `O(n/v)` data. Computation alternates *computation rounds*
//! with *communication rounds*; each communication round is a single
//! h-relation with `h = O(n/v)`.
//!
//! This crate defines:
//!
//! * [`CgmProgram`] — an algorithm as a per-processor superstep state
//!   machine. The same unmodified program runs on every runner in the
//!   workspace: the in-memory [`DirectRunner`], the multi-threaded
//!   [`ThreadedRunner`] (the "real parallel machine" of the paper's
//!   Figure 3 baseline), and the external-memory simulation runners in
//!   `cgmio-core` — which is precisely the portability claim of the
//!   paper's simulation technique.
//! * [`ProcState`] — serialisable per-processor *context*, so the EM
//!   runners can swap contexts to disk (the `μ`/`M` story of the paper).
//! * [`CommCosts`] — exact h-relation accounting (`λ`, per-round maximum
//!   fan-in/fan-out, total volume), the quantities the simulation
//!   theorems are stated in.

#![warn(missing_docs)]

pub mod cost;
pub mod demo;
pub mod direct;
pub mod program;
pub mod state;
pub mod threaded;

pub use cost::{theorem2_predicted_ops, CommCosts, RoundCost};
pub use direct::DirectRunner;
pub use program::{CgmProgram, Incoming, Outbox, RoundCtx, Status};
pub use state::{Decoder, Encoder, ProcState};
pub use threaded::{ThreadedRunReport, ThreadedRunner};

/// Errors produced by the model runners.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A processor addressed a destination `>= v`.
    BadDestination {
        /// Sending virtual processor.
        src: usize,
        /// The invalid destination.
        dst: usize,
        /// Number of virtual processors.
        v: usize,
    },
    /// All processors reported `Done` but some also sent messages.
    MessagesAfterDone,
    /// The run exceeded the configured round limit (likely livelock).
    RoundLimit(
        /// The limit that was hit.
        usize,
    ),
    /// Mixed Done/Continue statuses in a round where the runner requires
    /// agreement.
    StatusDisagreement {
        /// The round in which the disagreement happened.
        round: usize,
    },
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::BadDestination { src, dst, v } => {
                write!(f, "processor {src} sent to invalid destination {dst} (v = {v})")
            }
            ModelError::MessagesAfterDone => {
                write!(f, "all processors reported Done but messages were sent")
            }
            ModelError::RoundLimit(l) => write!(f, "exceeded round limit {l}"),
            ModelError::StatusDisagreement { round } => {
                write!(f, "processors disagreed on termination in round {round}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// Safety valve: a CGM algorithm that runs this many rounds is considered
/// livelocked. Every algorithm in this workspace uses `O(log v)` rounds
/// or fewer.
pub const DEFAULT_ROUND_LIMIT: usize = 10_000;
