//! The CGM program abstraction: a per-processor superstep state machine.

use cgmio_pdm::Item;

use crate::state::ProcState;

/// What a processor reports at the end of a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// More rounds needed.
    Continue,
    /// This processor is finished. A run terminates in the first round
    /// where **every** processor reports `Done`; a round in which
    /// statuses disagree is an error (CGM supersteps are globally
    /// synchronous, so well-formed programs agree on termination).
    Done,
}

/// Messages received by one processor in one round, indexed by source.
///
/// `incoming.from(src)` is the (possibly empty) sequence of items sent by
/// virtual processor `src` in the previous communication round, in send
/// order. This source-indexed shape mirrors the simulation engine's
/// message matrix, where the `(src, dst)` slot is a fixed disk region.
///
/// Storage is sparse: only sources that actually sent something occupy
/// memory, so an inbox at `v = 10^6` with two senders costs two entries,
/// not a million empty vectors. The dense-looking API (`from`, `iter`)
/// is preserved on top.
#[derive(Debug)]
pub struct Incoming<M> {
    v: usize,
    /// `(src, items)` for non-empty sources only, sorted by `src`.
    entries: Vec<(usize, Vec<M>)>,
}

impl<M> Incoming<M> {
    /// Build from a per-source vector (length `v`). Empty sources are
    /// dropped on the way in.
    pub fn new(per_src: Vec<Vec<M>>) -> Self {
        let v = per_src.len();
        let entries =
            per_src.into_iter().enumerate().filter(|(_, items)| !items.is_empty()).collect();
        Self { v, entries }
    }

    /// Build from sparse `(src, items)` entries, which must be sorted by
    /// `src`, unique, non-empty, and `< v`. This is the EM runners'
    /// entry point: the message matrix's sparse length table produces
    /// exactly this shape without materialising `v` vectors.
    pub fn from_sparse(v: usize, entries: Vec<(usize, Vec<M>)>) -> Self {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0), "sources must be sorted");
        debug_assert!(entries.iter().all(|(s, items)| *s < v && !items.is_empty()));
        Self { v, entries }
    }

    /// Empty inbox for `v` sources.
    pub fn empty(v: usize) -> Self {
        Self { v, entries: Vec::new() }
    }

    /// Messages from processor `src`.
    pub fn from(&self, src: usize) -> &[M] {
        debug_assert!(src < self.v, "source {src} out of range for v={}", self.v);
        match self.entries.binary_search_by_key(&src, |(s, _)| *s) {
            Ok(k) => &self.entries[k].1,
            Err(_) => &[],
        }
    }

    /// Iterate `(src, items)` over all sources (including empty ones).
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[M])> {
        let mut k = 0;
        (0..self.v).map(move |s| {
            if k < self.entries.len() && self.entries[k].0 == s {
                k += 1;
                (s, self.entries[k - 1].1.as_slice())
            } else {
                (s, &[][..])
            }
        })
    }

    /// Iterate `(src, items)` over non-empty sources only, in source
    /// order — O(senders), not O(v).
    pub fn iter_nonempty(&self) -> impl Iterator<Item = (usize, &[M])> {
        self.entries.iter().map(|(s, items)| (*s, items.as_slice()))
    }

    /// All received items, in source order, flattened.
    pub fn flatten(&self) -> Vec<M>
    where
        M: Copy,
    {
        self.entries.iter().flat_map(|(_, items)| items.iter().copied()).collect()
    }

    /// Total number of items received (the `h` of the h-relation, on the
    /// receive side).
    pub fn total(&self) -> usize {
        self.entries.iter().map(|(_, items)| items.len()).sum()
    }

    /// Consume, returning dense per-source vectors (length `v`).
    pub fn into_per_src(self) -> Vec<Vec<M>> {
        let mut per_src: Vec<Vec<M>> = (0..self.v).map(|_| Vec::new()).collect();
        for (s, items) in self.entries {
            per_src[s] = items;
        }
        per_src
    }
}

/// Staging area for the messages a processor sends in one round.
///
/// Sparse like [`Incoming`]: destinations are materialised on first
/// touch, so `Outbox::new(10^6)` is two machine words until the program
/// actually sends. Entries keep first-touch order internally;
/// [`Outbox::into_sparse`] sorts by destination.
#[derive(Debug)]
pub struct Outbox<M> {
    v: usize,
    /// `(dst, items)` in first-touch order.
    entries: Vec<(usize, Vec<M>)>,
}

impl<M: Item> Outbox<M> {
    /// New empty outbox for `v` destinations.
    pub fn new(v: usize) -> Self {
        Self { v, entries: Vec::new() }
    }

    /// Number of destinations (`v`).
    pub fn v(&self) -> usize {
        self.v
    }

    /// The staging vector for `dst` (created on first touch). Checks the
    /// most recent destination first — the common send pattern streams
    /// many items to one destination before moving on.
    fn slot(&mut self, dst: usize) -> &mut Vec<M> {
        assert!(dst < self.v, "destination {dst} out of range for v={}", self.v);
        let k = match self.entries.last() {
            Some((d, _)) if *d == dst => self.entries.len() - 1,
            _ => match self.entries.iter().position(|(d, _)| *d == dst) {
                Some(k) => k,
                None => {
                    self.entries.push((dst, Vec::new()));
                    self.entries.len() - 1
                }
            },
        };
        &mut self.entries[k].1
    }

    /// Append one item to the message for `dst`.
    pub fn push(&mut self, dst: usize, item: M) {
        self.slot(dst).push(item);
    }

    /// Append many items to the message for `dst`.
    pub fn send(&mut self, dst: usize, items: impl IntoIterator<Item = M>) {
        self.slot(dst).extend(items);
    }

    /// Items queued for `dst` so far.
    pub fn queued(&self, dst: usize) -> usize {
        self.entries.iter().find(|(d, _)| *d == dst).map_or(0, |(_, items)| items.len())
    }

    /// Total items queued (send-side `h`).
    pub fn total(&self) -> usize {
        self.entries.iter().map(|(_, items)| items.len()).sum()
    }

    /// Consume, returning dense per-destination vectors (length `v`).
    pub fn into_per_dst(self) -> Vec<Vec<M>> {
        let mut per_dst: Vec<Vec<M>> = (0..self.v).map(|_| Vec::new()).collect();
        for (d, items) in self.entries {
            per_dst[d].extend(items);
        }
        per_dst
    }

    /// Consume, returning sparse `(dst, items)` entries sorted by
    /// destination, non-empty messages only — the EM runners' step (d)
    /// input. Repeated touches of one destination are merged in send
    /// order, exactly as the dense form would concatenate them.
    pub fn into_sparse(mut self) -> Vec<(usize, Vec<M>)> {
        // First-touch order may interleave destinations; merge dupes.
        self.entries.sort_by_key(|(d, _)| *d);
        let mut out: Vec<(usize, Vec<M>)> = Vec::with_capacity(self.entries.len());
        for (d, items) in self.entries {
            if items.is_empty() {
                continue;
            }
            match out.last_mut() {
                Some((last, acc)) if *last == d => acc.extend(items),
                _ => out.push((d, items)),
            }
        }
        out
    }
}

/// Everything a processor sees during one compound superstep: identity,
/// round number, the inbox from the previous communication round, and the
/// outbox for the next one.
pub struct RoundCtx<'a, M> {
    /// This virtual processor's id, `0 ≤ pid < v`.
    pub pid: usize,
    /// Number of virtual processors.
    pub v: usize,
    /// Round number, starting at 0.
    pub round: usize,
    /// Messages received (sent in round `round − 1`; empty in round 0).
    pub incoming: Incoming<M>,
    /// Messages to deliver before round `round + 1`.
    pub outbox: &'a mut Outbox<M>,
}

impl<M: Item> RoundCtx<'_, M> {
    /// Shorthand for `outbox.send`.
    pub fn send(&mut self, dst: usize, items: impl IntoIterator<Item = M>) {
        self.outbox.send(dst, items);
    }

    /// Shorthand for `outbox.push`.
    pub fn push(&mut self, dst: usize, item: M) {
        self.outbox.push(dst, item);
    }
}

/// A CGM algorithm.
///
/// The algorithm is expressed as the body of one *compound superstep*:
/// receive, compute, send. The runner owns scheduling, message routing
/// and (for the external-memory runners) context/message disk layout.
///
/// Contract:
/// * `State` is the processor's *context* in the paper's sense; its
///   encoded size is the `μ` parameter. It must round-trip through
///   [`ProcState`] encoding losslessly.
/// * Each round, each processor sends and receives `O(N/v)` items in
///   total (the h-relation discipline). Runners *measure* h rather than
///   trusting the program; the EM runners additionally *enforce* a slot
///   bound.
/// * All processors must report [`Status::Done`] in the same round, with
///   no messages sent in that final round.
pub trait CgmProgram: Send + Sync {
    /// Message item type.
    type Msg: Item;
    /// Per-processor context.
    type State: ProcState + Send;

    /// Execute one compound superstep on one virtual processor.
    fn round(&self, ctx: &mut RoundCtx<'_, Self::Msg>, state: &mut Self::State) -> Status;

    /// Optional hint: number of rounds, if known a priori (used only for
    /// progress reporting; termination always comes from [`Status`]).
    fn rounds_hint(&self, _v: usize) -> Option<usize> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbox_accumulates_per_destination() {
        let mut o: Outbox<u64> = Outbox::new(3);
        o.push(0, 1);
        o.send(2, [2, 3]);
        o.push(2, 4);
        assert_eq!(o.queued(0), 1);
        assert_eq!(o.queued(1), 0);
        assert_eq!(o.queued(2), 3);
        assert_eq!(o.total(), 4);
        let per = o.into_per_dst();
        assert_eq!(per[2], vec![2, 3, 4]);
    }

    #[test]
    fn incoming_indexing_and_flatten() {
        let inc = Incoming::new(vec![vec![1u64, 2], vec![], vec![3]]);
        assert_eq!(inc.from(0), &[1, 2]);
        assert_eq!(inc.from(1), &[] as &[u64]);
        assert_eq!(inc.total(), 3);
        assert_eq!(inc.flatten(), vec![1, 2, 3]);
        let pairs: Vec<(usize, usize)> = inc.iter().map(|(s, m)| (s, m.len())).collect();
        assert_eq!(pairs, vec![(0, 2), (1, 0), (2, 1)]);
    }

    #[test]
    fn sparse_and_dense_incoming_agree() {
        let dense = Incoming::new(vec![vec![], vec![7u64], vec![], vec![8, 9]]);
        let sparse = Incoming::from_sparse(4, vec![(1, vec![7u64]), (3, vec![8, 9])]);
        assert_eq!(dense.from(1), sparse.from(1));
        assert_eq!(dense.from(2), sparse.from(2));
        assert_eq!(dense.total(), sparse.total());
        assert_eq!(dense.flatten(), sparse.flatten());
        let nonempty: Vec<usize> = sparse.iter_nonempty().map(|(s, _)| s).collect();
        assert_eq!(nonempty, vec![1, 3]);
        assert_eq!(sparse.into_per_src(), vec![vec![], vec![7], vec![], vec![8, 9]]);
    }

    #[test]
    fn outbox_into_sparse_sorts_and_merges_interleaved_sends() {
        let mut o: Outbox<u64> = Outbox::new(5);
        o.push(3, 1);
        o.push(0, 2);
        o.push(3, 3); // revisit dst 3 after touching dst 0
        o.send(1, []); // empty touch must not appear in sparse form
        let sparse = o.into_sparse();
        assert_eq!(sparse, vec![(0, vec![2]), (3, vec![1, 3])]);
    }

    #[test]
    fn outbox_new_does_not_allocate_per_destination() {
        // The whole point of the sparse outbox: v can be huge for free.
        let mut o: Outbox<u64> = Outbox::new(1_000_000);
        o.push(999_999, 42);
        assert_eq!(o.total(), 1);
        assert_eq!(o.queued(999_999), 1);
        assert_eq!(o.into_sparse(), vec![(999_999, vec![42])]);
    }
}
