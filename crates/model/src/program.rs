//! The CGM program abstraction: a per-processor superstep state machine.

use cgmio_pdm::Item;

use crate::state::ProcState;

/// What a processor reports at the end of a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// More rounds needed.
    Continue,
    /// This processor is finished. A run terminates in the first round
    /// where **every** processor reports `Done`; a round in which
    /// statuses disagree is an error (CGM supersteps are globally
    /// synchronous, so well-formed programs agree on termination).
    Done,
}

/// Messages received by one processor in one round, indexed by source.
///
/// `incoming.from(src)` is the (possibly empty) sequence of items sent by
/// virtual processor `src` in the previous communication round, in send
/// order. This source-indexed shape mirrors the simulation engine's
/// message matrix, where the `(src, dst)` slot is a fixed disk region.
#[derive(Debug)]
pub struct Incoming<M> {
    per_src: Vec<Vec<M>>,
}

impl<M> Incoming<M> {
    /// Build from a per-source vector (length `v`).
    pub fn new(per_src: Vec<Vec<M>>) -> Self {
        Self { per_src }
    }

    /// Empty inbox for `v` sources.
    pub fn empty(v: usize) -> Self {
        Self { per_src: (0..v).map(|_| Vec::new()).collect() }
    }

    /// Messages from processor `src`.
    pub fn from(&self, src: usize) -> &[M] {
        &self.per_src[src]
    }

    /// Iterate `(src, items)` over all sources (including empty ones).
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[M])> {
        self.per_src.iter().enumerate().map(|(s, v)| (s, v.as_slice()))
    }

    /// All received items, in source order, flattened.
    pub fn flatten(&self) -> Vec<M>
    where
        M: Copy,
    {
        self.per_src.iter().flat_map(|v| v.iter().copied()).collect()
    }

    /// Total number of items received (the `h` of the h-relation, on the
    /// receive side).
    pub fn total(&self) -> usize {
        self.per_src.iter().map(Vec::len).sum()
    }

    /// Consume, returning the per-source vectors.
    pub fn into_per_src(self) -> Vec<Vec<M>> {
        self.per_src
    }
}

/// Staging area for the messages a processor sends in one round.
#[derive(Debug)]
pub struct Outbox<M> {
    per_dst: Vec<Vec<M>>,
}

impl<M: Item> Outbox<M> {
    /// New empty outbox for `v` destinations.
    pub fn new(v: usize) -> Self {
        Self { per_dst: (0..v).map(|_| Vec::new()).collect() }
    }

    /// Number of destinations (`v`).
    pub fn v(&self) -> usize {
        self.per_dst.len()
    }

    /// Append one item to the message for `dst`.
    pub fn push(&mut self, dst: usize, item: M) {
        self.per_dst[dst].push(item);
    }

    /// Append many items to the message for `dst`.
    pub fn send(&mut self, dst: usize, items: impl IntoIterator<Item = M>) {
        self.per_dst[dst].extend(items);
    }

    /// Items queued for `dst` so far.
    pub fn queued(&self, dst: usize) -> usize {
        self.per_dst[dst].len()
    }

    /// Total items queued (send-side `h`).
    pub fn total(&self) -> usize {
        self.per_dst.iter().map(Vec::len).sum()
    }

    /// Consume, returning per-destination vectors.
    pub fn into_per_dst(self) -> Vec<Vec<M>> {
        self.per_dst
    }
}

/// Everything a processor sees during one compound superstep: identity,
/// round number, the inbox from the previous communication round, and the
/// outbox for the next one.
pub struct RoundCtx<'a, M> {
    /// This virtual processor's id, `0 ≤ pid < v`.
    pub pid: usize,
    /// Number of virtual processors.
    pub v: usize,
    /// Round number, starting at 0.
    pub round: usize,
    /// Messages received (sent in round `round − 1`; empty in round 0).
    pub incoming: Incoming<M>,
    /// Messages to deliver before round `round + 1`.
    pub outbox: &'a mut Outbox<M>,
}

impl<M: Item> RoundCtx<'_, M> {
    /// Shorthand for `outbox.send`.
    pub fn send(&mut self, dst: usize, items: impl IntoIterator<Item = M>) {
        self.outbox.send(dst, items);
    }

    /// Shorthand for `outbox.push`.
    pub fn push(&mut self, dst: usize, item: M) {
        self.outbox.push(dst, item);
    }
}

/// A CGM algorithm.
///
/// The algorithm is expressed as the body of one *compound superstep*:
/// receive, compute, send. The runner owns scheduling, message routing
/// and (for the external-memory runners) context/message disk layout.
///
/// Contract:
/// * `State` is the processor's *context* in the paper's sense; its
///   encoded size is the `μ` parameter. It must round-trip through
///   [`ProcState`] encoding losslessly.
/// * Each round, each processor sends and receives `O(N/v)` items in
///   total (the h-relation discipline). Runners *measure* h rather than
///   trusting the program; the EM runners additionally *enforce* a slot
///   bound.
/// * All processors must report [`Status::Done`] in the same round, with
///   no messages sent in that final round.
pub trait CgmProgram: Send + Sync {
    /// Message item type.
    type Msg: Item;
    /// Per-processor context.
    type State: ProcState + Send;

    /// Execute one compound superstep on one virtual processor.
    fn round(&self, ctx: &mut RoundCtx<'_, Self::Msg>, state: &mut Self::State) -> Status;

    /// Optional hint: number of rounds, if known a priori (used only for
    /// progress reporting; termination always comes from [`Status`]).
    fn rounds_hint(&self, _v: usize) -> Option<usize> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbox_accumulates_per_destination() {
        let mut o: Outbox<u64> = Outbox::new(3);
        o.push(0, 1);
        o.send(2, [2, 3]);
        o.push(2, 4);
        assert_eq!(o.queued(0), 1);
        assert_eq!(o.queued(1), 0);
        assert_eq!(o.queued(2), 3);
        assert_eq!(o.total(), 4);
        let per = o.into_per_dst();
        assert_eq!(per[2], vec![2, 3, 4]);
    }

    #[test]
    fn incoming_indexing_and_flatten() {
        let inc = Incoming::new(vec![vec![1u64, 2], vec![], vec![3]]);
        assert_eq!(inc.from(0), &[1, 2]);
        assert_eq!(inc.from(1), &[] as &[u64]);
        assert_eq!(inc.total(), 3);
        assert_eq!(inc.flatten(), vec![1, 2, 3]);
        let pairs: Vec<(usize, usize)> = inc.iter().map(|(s, m)| (s, m.len())).collect();
        assert_eq!(pairs, vec![(0, 2), (1, 0), (2, 1)]);
    }
}
