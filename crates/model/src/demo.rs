//! Tiny CGM programs used by tests, docs and examples across the
//! workspace. They are deliberately simple — the real algorithm
//! catalogue lives in `cgmio-algos`.

use crate::program::{CgmProgram, RoundCtx, Status};

/// Each processor holds one token and passes it to `(pid + 1) mod v`
/// every round, `rounds` times. State: `Vec<u64>` with exactly one token.
#[derive(Debug, Clone, Copy)]
pub struct TokenRing {
    /// Number of rotation rounds.
    pub rounds: usize,
}

impl CgmProgram for TokenRing {
    type Msg = u64;
    type State = Vec<u64>;

    fn round(&self, ctx: &mut RoundCtx<'_, u64>, state: &mut Vec<u64>) -> Status {
        if ctx.round > 0 {
            let from = (ctx.pid + ctx.v - 1) % ctx.v;
            state[0] = ctx.incoming.from(from)[0];
        }
        if ctx.round == self.rounds {
            return Status::Done;
        }
        let token = state[0];
        ctx.push((ctx.pid + 1) % ctx.v, token);
        Status::Continue
    }

    fn rounds_hint(&self, _v: usize) -> Option<usize> {
        Some(self.rounds + 1)
    }
}

/// Global prefix sums over the concatenation of all processors' local
/// values, in one communication round: every processor broadcasts its
/// local sum, then offsets its local prefix sums by the totals of lower
/// processors. State: `(values, prefix)`.
#[derive(Debug, Clone, Copy)]
pub struct PrefixSum;

impl CgmProgram for PrefixSum {
    type Msg = u64;
    type State = (Vec<u64>, Vec<u64>);

    fn round(&self, ctx: &mut RoundCtx<'_, u64>, state: &mut (Vec<u64>, Vec<u64>)) -> Status {
        match ctx.round {
            0 => {
                let local_sum: u64 = state.0.iter().sum();
                for dst in 0..ctx.v {
                    ctx.push(dst, local_sum);
                }
                Status::Continue
            }
            _ => {
                let offset: u64 = (0..ctx.pid).map(|src| ctx.incoming.from(src)[0]).sum();
                let mut acc = offset;
                state.1 = state
                    .0
                    .iter()
                    .map(|&x| {
                        acc += x;
                        acc
                    })
                    .collect();
                Status::Done
            }
        }
    }

    fn rounds_hint(&self, _v: usize) -> Option<usize> {
        Some(2)
    }
}

/// Total exchange: processor `src` sends `items_per_pair` items
/// `(src·v + dst)·10 + k` to every `dst`; each receiver stores the
/// flattened inbox. Exercises the full message matrix with equal-size
/// messages. State: `Vec<u64>` (received items).
#[derive(Debug, Clone, Copy)]
pub struct AllToAll {
    /// Items per (src, dst) pair.
    pub items_per_pair: usize,
}

impl CgmProgram for AllToAll {
    type Msg = u64;
    type State = Vec<u64>;

    fn round(&self, ctx: &mut RoundCtx<'_, u64>, state: &mut Vec<u64>) -> Status {
        match ctx.round {
            0 => {
                for dst in 0..ctx.v {
                    let base = (ctx.pid * ctx.v + dst) as u64 * 10;
                    ctx.send(dst, (0..self.items_per_pair as u64).map(|k| base + k));
                }
                Status::Continue
            }
            _ => {
                *state = ctx.incoming.flatten();
                Status::Done
            }
        }
    }

    fn rounds_hint(&self, _v: usize) -> Option<usize> {
        Some(2)
    }
}

/// A deliberately *unbalanced* exchange: every processor sends its whole
/// `N/v` payload to processor 0. Used by tests and ablations to show what
/// BalancedRouting fixes. State: `Vec<u64>`.
#[derive(Debug, Clone, Copy)]
pub struct AllToOne {
    /// Items each processor sends to processor 0.
    pub items_per_proc: usize,
}

impl CgmProgram for AllToOne {
    type Msg = u64;
    type State = Vec<u64>;

    fn round(&self, ctx: &mut RoundCtx<'_, u64>, state: &mut Vec<u64>) -> Status {
        match ctx.round {
            0 => {
                let base = ctx.pid as u64 * self.items_per_proc as u64;
                ctx.send(0, (0..self.items_per_proc as u64).map(|k| base + k));
                Status::Continue
            }
            _ => {
                if ctx.pid == 0 {
                    *state = ctx.incoming.flatten();
                }
                Status::Done
            }
        }
    }
}
