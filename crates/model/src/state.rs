//! Serialisable per-processor contexts.
//!
//! The EM-CGM simulation swaps each virtual processor's *context* to disk
//! between supersteps (steps (a)/(e) of the paper's Algorithm 2). A
//! context is anything implementing [`ProcState`]: a lossless, fixed
//! self-describing binary encoding. The encoded length is the context
//! size; its maximum over processors and rounds is the paper's `μ`.

use cgmio_pdm::Item;

/// Streaming encoder used by [`ProcState::encode`].
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// New empty encoder.
    pub fn new() -> Self {
        Self { buf: Vec::new() }
    }

    /// Append a length-prefixed slice of items.
    pub fn items<T: Item>(&mut self, xs: &[T]) -> &mut Self {
        self.u64(xs.len() as u64);
        let start = self.buf.len();
        self.buf.resize(start + xs.len() * T::SIZE, 0);
        for (i, x) in xs.iter().enumerate() {
            x.write_to(&mut self.buf[start + i * T::SIZE..start + (i + 1) * T::SIZE]);
        }
        self
    }

    /// Append a bare `u64`.
    pub fn u64(&mut self, x: u64) -> &mut Self {
        self.buf.extend_from_slice(&x.to_le_bytes());
        self
    }

    /// Append a bare `i64`.
    pub fn i64(&mut self, x: i64) -> &mut Self {
        self.buf.extend_from_slice(&x.to_le_bytes());
        self
    }

    /// Append one item.
    pub fn item<T: Item>(&mut self, x: &T) -> &mut Self {
        let start = self.buf.len();
        self.buf.resize(start + T::SIZE, 0);
        x.write_to(&mut self.buf[start..]);
        self
    }

    /// Append raw bytes, length-prefixed.
    pub fn bytes(&mut self, b: &[u8]) -> &mut Self {
        self.u64(b.len() as u64);
        self.buf.extend_from_slice(b);
        self
    }

    /// Finish, returning the encoded buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

impl Default for Encoder {
    fn default() -> Self {
        Self::new()
    }
}

/// Streaming decoder used by [`ProcState::decode`].
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Decode from `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Read a length-prefixed item slice.
    pub fn items<T: Item>(&mut self) -> Vec<T> {
        let n = self.u64() as usize;
        let bytes = n * T::SIZE;
        let out = T::decode_slice(&self.buf[self.pos..self.pos + bytes], n);
        self.pos += bytes;
        out
    }

    /// Read a bare `u64`.
    pub fn u64(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.buf[self.pos..self.pos + 8].try_into().unwrap());
        self.pos += 8;
        v
    }

    /// Read a bare `i64`.
    pub fn i64(&mut self) -> i64 {
        let v = i64::from_le_bytes(self.buf[self.pos..self.pos + 8].try_into().unwrap());
        self.pos += 8;
        v
    }

    /// Read one item.
    pub fn item<T: Item>(&mut self) -> T {
        let v = T::read_from(&self.buf[self.pos..self.pos + T::SIZE]);
        self.pos += T::SIZE;
        v
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self) -> Vec<u8> {
        let n = self.u64() as usize;
        let out = self.buf[self.pos..self.pos + n].to_vec();
        self.pos += n;
        out
    }

    /// True if the whole buffer was consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// A virtual processor context that can be swapped to disk.
pub trait ProcState: Sized {
    /// Serialise into `enc`.
    fn encode(&self, enc: &mut Encoder);

    /// Reconstruct from `dec`. Must be the exact inverse of `encode`.
    fn decode(dec: &mut Decoder<'_>) -> Self;

    /// Encoded size in bytes (the context size; max over procs = `μ`).
    fn encoded_len(&self) -> usize {
        let mut e = Encoder::new();
        self.encode(&mut e);
        e.finish().len()
    }

    /// Convenience: encode to a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        self.encode(&mut e);
        e.finish()
    }

    /// Convenience: decode from a buffer.
    fn from_bytes(buf: &[u8]) -> Self {
        Self::decode(&mut Decoder::new(buf))
    }
}

impl<T: Item> ProcState for Vec<T> {
    fn encode(&self, enc: &mut Encoder) {
        enc.items(self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Self {
        dec.items()
    }
}

impl ProcState for u64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.u64(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Self {
        dec.u64()
    }
}

impl<A: ProcState, B: ProcState> ProcState for (A, B) {
    fn encode(&self, enc: &mut Encoder) {
        self.0.encode(enc);
        self.1.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Self {
        let a = A::decode(dec);
        let b = B::decode(dec);
        (a, b)
    }
}

impl<A: ProcState, B: ProcState, C: ProcState> ProcState for (A, B, C) {
    fn encode(&self, enc: &mut Encoder) {
        self.0.encode(enc);
        self.1.encode(enc);
        self.2.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Self {
        let a = A::decode(dec);
        let b = B::decode(dec);
        let c = C::decode(dec);
        (a, b, c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_roundtrip() {
        let v: Vec<u64> = (0..50).collect();
        let bytes = v.to_bytes();
        assert_eq!(Vec::<u64>::from_bytes(&bytes), v);
        assert_eq!(v.encoded_len(), 8 + 50 * 8);
    }

    #[test]
    fn tuple_state_roundtrip() {
        let s: (u64, Vec<i64>, Vec<(u64, u64)>) = (7, vec![-1, 2], vec![(1, 2), (3, 4)]);
        let bytes = s.to_bytes();
        let back = <(u64, Vec<i64>, Vec<(u64, u64)>)>::from_bytes(&bytes);
        assert_eq!(back, s);
    }

    #[test]
    fn encoder_decoder_mixed_stream() {
        let mut e = Encoder::new();
        e.u64(5).i64(-9).item(&(1u32, 2u32)).bytes(b"hi").items(&[7u16, 8, 9]);
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        assert_eq!(d.u64(), 5);
        assert_eq!(d.i64(), -9);
        assert_eq!(d.item::<(u32, u32)>(), (1, 2));
        assert_eq!(d.bytes(), b"hi");
        assert_eq!(d.items::<u16>(), vec![7, 8, 9]);
        assert!(d.is_exhausted());
    }

    #[test]
    fn empty_vec_roundtrip() {
        let v: Vec<u64> = vec![];
        assert_eq!(Vec::<u64>::from_bytes(&v.to_bytes()), v);
    }
}
