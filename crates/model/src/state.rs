//! Serialisable per-processor contexts.
//!
//! The EM-CGM simulation swaps each virtual processor's *context* to disk
//! between supersteps (steps (a)/(e) of the paper's Algorithm 2). A
//! context is anything implementing [`ProcState`]: a lossless, fixed
//! self-describing binary encoding. The encoded length is the context
//! size; its maximum over processors and rounds is the paper's `μ`.

use cgmio_pdm::{CodecError, Item};

/// Streaming encoder used by [`ProcState::encode`].
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// New empty encoder.
    pub fn new() -> Self {
        Self { buf: Vec::new() }
    }

    /// Encoder reusing `buf`'s capacity (the buffer is cleared). The hot
    /// path re-encodes every context each superstep; reusing one scratch
    /// buffer removes that per-context allocation.
    pub fn with_buffer(mut buf: Vec<u8>) -> Self {
        buf.clear();
        Self { buf }
    }

    /// Append a length-prefixed slice of items.
    pub fn items<T: Item>(&mut self, xs: &[T]) -> &mut Self {
        self.u64(xs.len() as u64);
        let start = self.buf.len();
        self.buf.resize(start + xs.len() * T::SIZE, 0);
        for (i, x) in xs.iter().enumerate() {
            x.write_to(&mut self.buf[start + i * T::SIZE..start + (i + 1) * T::SIZE]);
        }
        self
    }

    /// Append a bare `u64`.
    pub fn u64(&mut self, x: u64) -> &mut Self {
        self.buf.extend_from_slice(&x.to_le_bytes());
        self
    }

    /// Append a bare `i64`.
    pub fn i64(&mut self, x: i64) -> &mut Self {
        self.buf.extend_from_slice(&x.to_le_bytes());
        self
    }

    /// Append one item.
    pub fn item<T: Item>(&mut self, x: &T) -> &mut Self {
        let start = self.buf.len();
        self.buf.resize(start + T::SIZE, 0);
        x.write_to(&mut self.buf[start..]);
        self
    }

    /// Append raw bytes, length-prefixed.
    pub fn bytes(&mut self, b: &[u8]) -> &mut Self {
        self.u64(b.len() as u64);
        self.buf.extend_from_slice(b);
        self
    }

    /// Finish, returning the encoded buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

impl Default for Encoder {
    fn default() -> Self {
        Self::new()
    }
}

/// Streaming decoder used by [`ProcState::decode`].
///
/// The decoder is *poisoning*, not panicking: reading past the end of
/// the buffer (or hitting a length prefix that doesn't fit) records a
/// [`CodecError`], and every subsequent read returns a zero value /
/// empty collection. Contexts read back from disk can be truncated or
/// corrupt — a torn write that slipped past checksumming, a bad resume —
/// and that is an I/O condition to report via
/// [`ProcState::try_from_bytes`], never a reason to crash the run.
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
    failed: Option<CodecError>,
}

impl<'a> Decoder<'a> {
    /// Decode from `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0, failed: None }
    }

    /// Take the next `n` bytes, or poison the decoder.
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let left = self.buf.len() - self.pos;
        if left >= n {
            let s = &self.buf[self.pos..self.pos + n];
            self.pos += n;
            Some(s)
        } else {
            if self.failed.is_none() {
                self.failed = Some(CodecError { needed: n, got: left });
            }
            self.pos = self.buf.len();
            None
        }
    }

    /// Read a length-prefixed item slice; empty once poisoned.
    ///
    /// The length prefix is validated against the remaining bytes
    /// *before* any allocation, so a corrupt prefix cannot trigger a
    /// huge allocation (let alone an out-of-bounds read).
    pub fn items<T: Item>(&mut self) -> Vec<T> {
        let n = self.u64() as usize;
        let Some(bytes) = n.checked_mul(T::SIZE) else {
            self.take(usize::MAX); // poison with an impossible need
            return Vec::new();
        };
        match self.take(bytes) {
            Some(buf) => T::decode_from(buf, n).expect("length checked"),
            None => Vec::new(),
        }
    }

    /// Read a bare `u64`; 0 once poisoned.
    pub fn u64(&mut self) -> u64 {
        self.take(8).map(|b| u64::from_le_bytes(b.try_into().unwrap())).unwrap_or(0)
    }

    /// Read a bare `i64`; 0 once poisoned.
    pub fn i64(&mut self) -> i64 {
        self.take(8).map(|b| i64::from_le_bytes(b.try_into().unwrap())).unwrap_or(0)
    }

    /// Read one item; zero-bytes value once poisoned.
    pub fn item<T: Item>(&mut self) -> T {
        match self.take(T::SIZE) {
            Some(b) => T::read_from(b),
            None => T::read_from(&vec![0u8; T::SIZE]),
        }
    }

    /// Read a length-prefixed byte string; empty once poisoned.
    pub fn bytes(&mut self) -> Vec<u8> {
        let n = self.u64() as usize;
        self.take(n).map(|b| b.to_vec()).unwrap_or_default()
    }

    /// True if the whole buffer was consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// The first decode failure, if any read ran past the buffer.
    pub fn error(&self) -> Option<CodecError> {
        self.failed
    }
}

/// A virtual processor context that can be swapped to disk.
pub trait ProcState: Sized {
    /// Serialise into `enc`.
    fn encode(&self, enc: &mut Encoder);

    /// Reconstruct from `dec`. Must be the exact inverse of `encode`.
    fn decode(dec: &mut Decoder<'_>) -> Self;

    /// Encoded size in bytes (the context size; max over procs = `μ`).
    fn encoded_len(&self) -> usize {
        let mut e = Encoder::new();
        self.encode(&mut e);
        e.finish().len()
    }

    /// Convenience: encode to a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        self.encode(&mut e);
        e.finish()
    }

    /// Convenience: encode into a reused buffer (cleared first), keeping
    /// its capacity across calls. This is what the runners use on the hot
    /// path so swapping a context out doesn't allocate once the scratch
    /// buffer has grown to the largest context size.
    fn encode_to_vec(&self, buf: &mut Vec<u8>) {
        let mut e = Encoder::with_buffer(std::mem::take(buf));
        self.encode(&mut e);
        *buf = e.finish();
    }

    /// Decode from a buffer, reporting truncated or corrupt input as an
    /// error instead of panicking. Callers reading contexts back from
    /// disk should use this and surface the failure as an I/O error.
    fn try_from_bytes(buf: &[u8]) -> Result<Self, CodecError> {
        let mut d = Decoder::new(buf);
        let v = Self::decode(&mut d);
        match d.error() {
            Some(e) => Err(e),
            None => Ok(v),
        }
    }

    /// Convenience: decode from a buffer known to be well-formed.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is truncated or corrupt; use
    /// [`ProcState::try_from_bytes`] for data read from disk.
    fn from_bytes(buf: &[u8]) -> Self {
        Self::try_from_bytes(buf).expect("corrupt ProcState bytes")
    }
}

impl<T: Item> ProcState for Vec<T> {
    fn encode(&self, enc: &mut Encoder) {
        enc.items(self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Self {
        dec.items()
    }
}

impl ProcState for u64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.u64(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Self {
        dec.u64()
    }
}

impl<A: ProcState, B: ProcState> ProcState for (A, B) {
    fn encode(&self, enc: &mut Encoder) {
        self.0.encode(enc);
        self.1.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Self {
        let a = A::decode(dec);
        let b = B::decode(dec);
        (a, b)
    }
}

impl<A: ProcState, B: ProcState, C: ProcState> ProcState for (A, B, C) {
    fn encode(&self, enc: &mut Encoder) {
        self.0.encode(enc);
        self.1.encode(enc);
        self.2.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Self {
        let a = A::decode(dec);
        let b = B::decode(dec);
        let c = C::decode(dec);
        (a, b, c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_roundtrip() {
        let v: Vec<u64> = (0..50).collect();
        let bytes = v.to_bytes();
        assert_eq!(Vec::<u64>::from_bytes(&bytes), v);
        assert_eq!(v.encoded_len(), 8 + 50 * 8);
    }

    #[test]
    fn tuple_state_roundtrip() {
        let s: (u64, Vec<i64>, Vec<(u64, u64)>) = (7, vec![-1, 2], vec![(1, 2), (3, 4)]);
        let bytes = s.to_bytes();
        let back = <(u64, Vec<i64>, Vec<(u64, u64)>)>::from_bytes(&bytes);
        assert_eq!(back, s);
    }

    #[test]
    fn encoder_decoder_mixed_stream() {
        let mut e = Encoder::new();
        e.u64(5).i64(-9).item(&(1u32, 2u32)).bytes(b"hi").items(&[7u16, 8, 9]);
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        assert_eq!(d.u64(), 5);
        assert_eq!(d.i64(), -9);
        assert_eq!(d.item::<(u32, u32)>(), (1, 2));
        assert_eq!(d.bytes(), b"hi");
        assert_eq!(d.items::<u16>(), vec![7, 8, 9]);
        assert!(d.is_exhausted());
    }

    #[test]
    fn empty_vec_roundtrip() {
        let v: Vec<u64> = vec![];
        assert_eq!(Vec::<u64>::from_bytes(&v.to_bytes()), v);
    }

    #[test]
    fn truncated_bytes_error_instead_of_panicking() {
        let v: Vec<u64> = (0..8).collect();
        let bytes = v.to_bytes();
        for cut in 0..bytes.len() {
            let e = Vec::<u64>::try_from_bytes(&bytes[..cut])
                .expect_err("truncated buffer must not decode");
            assert!(e.got < e.needed, "{e}");
        }
        assert_eq!(Vec::<u64>::try_from_bytes(&bytes).unwrap(), v);
        // tuple states poison through all fields without panicking
        let s: (u64, Vec<i64>, Vec<(u64, u64)>) = (7, vec![-1, 2], vec![(1, 2)]);
        let enc = s.to_bytes();
        assert!(<(u64, Vec<i64>, Vec<(u64, u64)>)>::try_from_bytes(&enc[..enc.len() - 1]).is_err());
        assert!(<(u64, Vec<i64>, Vec<(u64, u64)>)>::try_from_bytes(&enc).is_ok());
    }

    #[test]
    fn corrupt_length_prefix_is_bounded() {
        // an absurd length prefix must neither panic nor allocate
        let mut bytes = vec![0u8; 8];
        bytes[..8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(Vec::<u64>::try_from_bytes(&bytes).is_err());
        // a plausible-but-too-long prefix is caught by the remaining-bytes check
        let mut e = Encoder::new();
        e.u64(1000).u64(42);
        assert!(Vec::<u64>::try_from_bytes(&e.finish()).is_err());
    }

    #[test]
    fn poisoned_decoder_returns_defaults_and_first_error() {
        let mut e = Encoder::new();
        e.u64(5);
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        assert_eq!(d.u64(), 5);
        assert_eq!(d.u64(), 0); // past the end: default, poisoned
        assert_eq!(d.i64(), 0);
        assert_eq!(d.item::<(u32, u32)>(), (0, 0));
        assert!(d.bytes().is_empty());
        assert!(d.items::<u64>().is_empty());
        let err = d.error().unwrap();
        assert_eq!((err.needed, err.got), (8, 0)); // first failure is kept
    }

    #[test]
    fn encode_to_vec_reuses_capacity() {
        let v: Vec<u64> = (0..100).collect();
        let mut buf = Vec::new();
        v.encode_to_vec(&mut buf);
        assert_eq!(buf, v.to_bytes());
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        let small: Vec<u64> = vec![1, 2];
        small.encode_to_vec(&mut buf);
        assert_eq!(buf, small.to_bytes());
        assert_eq!(buf.capacity(), cap);
        assert_eq!(buf.as_ptr(), ptr);
    }
}
