//! Lowest common ancestors via Euler tour + sparse-table RMQ
//! (reference semantics for the CGM batched-LCA program).

use crate::euler::{depths_from_parents, euler_tour, Tree};

/// O(n log n) preprocessing, O(1) queries.
pub struct LcaTable {
    first: Vec<usize>,
    /// Sparse table over (depth, vertex) pairs of the tour.
    table: Vec<Vec<(u64, u64)>>,
}

impl LcaTable {
    /// Build for the tree given by a parent array.
    pub fn new(parent: &[u64]) -> Self {
        let tree = Tree::from_parents(parent);
        let depth = depths_from_parents(parent);
        let (tour, first) = euler_tour(&tree);
        let base: Vec<(u64, u64)> = tour.iter().map(|&v| (depth[v as usize], v)).collect();
        let mut table = vec![base];
        let mut len = 1usize;
        while 2 * len <= table[0].len() {
            let prev = table.last().unwrap();
            let next: Vec<(u64, u64)> =
                (0..prev.len() - len).map(|i| prev[i].min(prev[i + len])).collect();
            table.push(next);
            len *= 2;
        }
        Self { first, table }
    }

    /// The LCA of `a` and `b`.
    pub fn lca(&self, a: u64, b: u64) -> u64 {
        let (mut i, mut j) = (self.first[a as usize], self.first[b as usize]);
        if i > j {
            std::mem::swap(&mut i, &mut j);
        }
        let span = j - i + 1;
        let k = usize::BITS as usize - 1 - span.leading_zeros() as usize;
        let row = &self.table[k];
        row[i].min(row[j + 1 - (1 << k)]).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgmio_data::random_tree_parents;

    fn naive_lca(parent: &[u64], depth: &[u64], mut a: u64, mut b: u64) -> u64 {
        while a != b {
            if depth[a as usize] >= depth[b as usize] {
                a = parent[a as usize];
            } else {
                b = parent[b as usize];
            }
        }
        a
    }

    #[test]
    fn matches_naive_on_random_trees() {
        for seed in 0..3u64 {
            let parent = random_tree_parents(200, seed);
            let depth = depths_from_parents(&parent);
            let t = LcaTable::new(&parent);
            for q in 0..500u64 {
                let a = (q * 37) % 200;
                let b = (q * 101 + 13) % 200;
                assert_eq!(t.lca(a, b), naive_lca(&parent, &depth, a, b), "seed {seed} ({a},{b})");
            }
        }
    }

    #[test]
    fn lca_identities() {
        let parent = random_tree_parents(64, 1);
        let t = LcaTable::new(&parent);
        for v in 0..64u64 {
            assert_eq!(t.lca(v, v), v);
            assert_eq!(t.lca(v, 0), 0, "root is ancestor of all");
        }
        // lca with parent is the parent
        for v in 1..64u64 {
            let p = parent[v as usize];
            if p != v {
                assert_eq!(t.lca(v, p), p);
            }
        }
    }

    #[test]
    fn path_tree() {
        // 0 - 1 - 2 - 3 (a path)
        let parent = vec![0, 0, 1, 2];
        let t = LcaTable::new(&parent);
        assert_eq!(t.lca(3, 1), 1);
        assert_eq!(t.lca(2, 3), 2);
        assert_eq!(t.lca(0, 3), 0);
    }
}
