//! Rooted trees, Euler tours and list ranking (reference semantics).

/// A rooted tree built from a parent array (`parent[root] = root`).
#[derive(Debug, Clone)]
pub struct Tree {
    /// Parent of each node (root points to itself).
    pub parent: Vec<u64>,
    /// Children lists, in ascending order (deterministic tours).
    pub children: Vec<Vec<u64>>,
    /// The root node.
    pub root: u64,
}

impl Tree {
    /// Build from a parent array.
    pub fn from_parents(parent: &[u64]) -> Self {
        let n = parent.len();
        let mut children = vec![Vec::new(); n];
        let mut root = 0u64;
        for (x, &p) in parent.iter().enumerate() {
            if p == x as u64 {
                root = x as u64;
            } else {
                children[p as usize].push(x as u64);
            }
        }
        for c in &mut children {
            c.sort_unstable();
        }
        Self { parent: parent.to_vec(), children, root }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }
}

/// Depth of every node (root = 0), iterative BFS down the tree.
pub fn depths_from_parents(parent: &[u64]) -> Vec<u64> {
    let tree = Tree::from_parents(parent);
    let mut depth = vec![0u64; parent.len()];
    let mut stack = vec![tree.root];
    while let Some(x) = stack.pop() {
        for &c in &tree.children[x as usize] {
            depth[c as usize] = depth[x as usize] + 1;
            stack.push(c);
        }
    }
    depth
}

/// The Euler tour of a rooted tree: the DFS visit sequence of vertices
/// (`2n − 1` entries), children visited in ascending order. Returns
/// `(tour, first_occurrence)`.
pub fn euler_tour(tree: &Tree) -> (Vec<u64>, Vec<usize>) {
    let n = tree.len();
    let mut tour = Vec::with_capacity(2 * n.saturating_sub(1) + 1);
    let mut first = vec![usize::MAX; n];
    // Iterative DFS emitting a vertex each time it is (re-)entered.
    enum Ev {
        Enter(u64),
        Emit(u64),
    }
    let mut stack = vec![Ev::Enter(tree.root)];
    while let Some(ev) = stack.pop() {
        match ev {
            Ev::Emit(x) => tour.push(x),
            Ev::Enter(x) => {
                if first[x as usize] == usize::MAX {
                    first[x as usize] = tour.len();
                }
                tour.push(x);
                // push children in reverse so they pop ascending;
                // after each child, re-emit x.
                for &c in tree.children[x as usize].iter().rev() {
                    stack.push(Ev::Emit(x));
                    stack.push(Ev::Enter(c));
                }
            }
        }
    }
    (tour, first)
}

/// Reference list ranking: given a successor array (tail points to
/// itself), return for every node its distance to the tail (tail = 0).
pub fn list_ranks(succ: &[u64]) -> Vec<u64> {
    let n = succ.len();
    // find head: the node nobody points to (excluding self-loops)
    let mut pointed = vec![false; n];
    for (x, &s) in succ.iter().enumerate() {
        if s != x as u64 {
            pointed[s as usize] = true;
        }
    }
    let head = (0..n).find(|&x| !pointed[x]).expect("list must have a head");
    // walk, recording positions
    let mut order = Vec::with_capacity(n);
    let mut cur = head as u64;
    loop {
        order.push(cur);
        let nxt = succ[cur as usize];
        if nxt == cur {
            break;
        }
        cur = nxt;
    }
    assert_eq!(order.len(), n, "successor array must form a single chain");
    let mut rank = vec![0u64; n];
    for (pos, &x) in order.iter().enumerate() {
        rank[x as usize] = (n - 1 - pos) as u64;
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgmio_data::{random_list, random_tree_parents};

    #[test]
    fn tour_of_small_tree() {
        // 0 -> {1, 2}, 1 -> {3}
        let parent = vec![0, 0, 0, 1];
        let tree = Tree::from_parents(&parent);
        let (tour, first) = euler_tour(&tree);
        assert_eq!(tour, vec![0, 1, 3, 1, 0, 2, 0]);
        assert_eq!(first, vec![0, 1, 5, 2]);
    }

    #[test]
    fn tour_length_is_2n_minus_1() {
        let parent = random_tree_parents(500, 3);
        let tree = Tree::from_parents(&parent);
        let (tour, first) = euler_tour(&tree);
        assert_eq!(tour.len(), 2 * 500 - 1);
        // every vertex appears; first occurrences are correct
        for v in 0..500u64 {
            assert_eq!(tour[first[v as usize]], v);
            assert!(tour[..first[v as usize]].iter().all(|&x| x != v));
        }
        // consecutive tour entries are tree edges
        for w in tour.windows(2) {
            let (a, b) = (w[0], w[1]);
            assert!(parent[a as usize] == b || parent[b as usize] == a);
        }
    }

    #[test]
    fn depths_are_consistent_with_parents() {
        let parent = random_tree_parents(300, 9);
        let depth = depths_from_parents(&parent);
        for x in 0..300usize {
            if parent[x] == x as u64 {
                assert_eq!(depth[x], 0);
            } else {
                assert_eq!(depth[x], depth[parent[x] as usize] + 1);
            }
        }
    }

    #[test]
    fn list_ranking_reference() {
        // 3 -> 1 -> 4 -> 0 -> 2(tail)
        let succ = vec![2, 4, 2, 1, 0];
        assert_eq!(list_ranks(&succ), vec![1, 3, 0, 4, 2]);
    }

    #[test]
    fn list_ranking_random() {
        let (succ, head) = random_list(400, 5);
        let ranks = list_ranks(&succ);
        assert_eq!(ranks[head as usize], 399);
        let tail = (0..400).find(|&x| succ[x] == x as u64).unwrap();
        assert_eq!(ranks[tail], 0);
        // ranks decrease by one along the chain
        for x in 0..400usize {
            if succ[x] != x as u64 {
                assert_eq!(ranks[x], ranks[succ[x] as usize] + 1);
            }
        }
    }

    #[test]
    fn singleton_structures() {
        let tree = Tree::from_parents(&[0]);
        let (tour, first) = euler_tour(&tree);
        assert_eq!(tour, vec![0]);
        assert_eq!(first, vec![0]);
        assert_eq!(list_ranks(&[0]), vec![0]);
    }
}
