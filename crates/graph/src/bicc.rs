//! Biconnected components and articulation points (iterative Tarjan),
//! reference semantics for the CGM Tarjan–Vishkin program.

/// Assign every edge a biconnected-component id. Returns
/// `(component_id_per_edge, component_count)`; edge order matches the
/// input slice. Isolated vertices contribute no edges.
pub fn biconnected_components(n: usize, edges: &[(u64, u64)]) -> (Vec<u32>, u32) {
    // Build adjacency with edge indices.
    let mut adj: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n]; // (neighbour, edge id)
    for (e, &(a, b)) in edges.iter().enumerate() {
        adj[a as usize].push((b as u32, e as u32));
        adj[b as usize].push((a as u32, e as u32));
    }
    let mut comp = vec![u32::MAX; edges.len()];
    let mut num = vec![u32::MAX; n]; // discovery order
    let mut low = vec![u32::MAX; n];
    let mut timer = 0u32;
    let mut comp_count = 0u32;
    let mut edge_stack: Vec<u32> = Vec::new();

    // Iterative DFS frame: (vertex, parent edge id, next adjacency index)
    let mut frame: Vec<(u32, u32, u32)> = Vec::new();
    for start in 0..n as u32 {
        if num[start as usize] != u32::MAX {
            continue;
        }
        num[start as usize] = timer;
        low[start as usize] = timer;
        timer += 1;
        frame.push((start, u32::MAX, 0));
        while let Some(top) = frame.len().checked_sub(1) {
            let (u, pe, idx) = frame[top];
            if (idx as usize) < adj[u as usize].len() {
                frame[top].2 += 1;
                let (w, e) = adj[u as usize][idx as usize];
                if e == pe {
                    continue;
                }
                if num[w as usize] == u32::MAX {
                    edge_stack.push(e);
                    num[w as usize] = timer;
                    low[w as usize] = timer;
                    timer += 1;
                    frame.push((w, e, 0));
                } else if num[w as usize] < num[u as usize] {
                    // back edge
                    edge_stack.push(e);
                    low[u as usize] = low[u as usize].min(num[w as usize]);
                }
            } else {
                frame.pop();
                if let Some(&(parent, _, _)) = frame.last() {
                    low[parent as usize] = low[parent as usize].min(low[u as usize]);
                    if low[u as usize] >= num[parent as usize] {
                        // parent is an articulation point (or root):
                        // pop the component containing edge (parent, u).
                        while let Some(&top) = edge_stack.last() {
                            let (a, b) = edges[top as usize];
                            let deeper = num[a as usize].max(num[b as usize]);
                            if deeper >= num[u as usize] {
                                comp[top as usize] = comp_count;
                                edge_stack.pop();
                            } else {
                                break;
                            }
                        }
                        comp_count += 1;
                    }
                }
            }
        }
    }
    (comp, comp_count)
}

/// Articulation points: vertices whose removal disconnects their
/// component — derived from the biconnected components (a vertex is an
/// articulation point iff its incident edges span more than one
/// component).
pub fn articulation_points(n: usize, edges: &[(u64, u64)]) -> Vec<bool> {
    let (comp, _) = biconnected_components(n, edges);
    let mut seen: Vec<Option<u32>> = vec![None; n];
    let mut art = vec![false; n];
    for (e, &(a, b)) in edges.iter().enumerate() {
        for x in [a as usize, b as usize] {
            match seen[x] {
                None => seen[x] = Some(comp[e]),
                Some(c) if c != comp[e] => art[x] = true,
                _ => {}
            }
        }
    }
    art
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc_labels;
    use cgmio_data::gnm_edges;

    #[test]
    fn two_triangles_sharing_a_vertex() {
        // 0-1-2-0 and 2-3-4-2 share vertex 2 (an articulation point).
        let edges = vec![(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)];
        let (comp, count) = biconnected_components(5, &edges);
        assert_eq!(count, 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_eq!(comp[4], comp[5]);
        assert_ne!(comp[0], comp[3]);
        let art = articulation_points(5, &edges);
        assert_eq!(art, vec![false, false, true, false, false]);
    }

    #[test]
    fn bridge_is_its_own_component() {
        // path 0-1-2: both edges are bridges, separate components.
        let edges = vec![(0, 1), (1, 2)];
        let (comp, count) = biconnected_components(3, &edges);
        assert_eq!(count, 2);
        assert_ne!(comp[0], comp[1]);
    }

    #[test]
    fn cycle_is_one_component() {
        let edges: Vec<(u64, u64)> = (0..8).map(|i| (i, (i + 1) % 8)).collect();
        let (comp, count) = biconnected_components(8, &edges);
        assert_eq!(count, 1);
        assert!(comp.iter().all(|&c| c == 0));
        assert!(articulation_points(8, &edges).iter().all(|&a| !a));
    }

    /// Brute-force articulation check: removing v increases components.
    fn naive_articulation(n: usize, edges: &[(u64, u64)], v: u64) -> bool {
        let comp_before = {
            let l = cc_labels(n, edges);
            let mut u: Vec<u64> =
                (0..n as u64).filter(|&x| x != v).map(|x| l[x as usize]).collect();
            u.sort_unstable();
            u.dedup();
            u.len()
        };
        let filtered: Vec<(u64, u64)> =
            edges.iter().copied().filter(|&(a, b)| a != v && b != v).collect();
        let comp_after = {
            let l = cc_labels(n, &filtered);
            let mut u: Vec<u64> =
                (0..n as u64).filter(|&x| x != v).map(|x| l[x as usize]).collect();
            u.sort_unstable();
            u.dedup();
            u.len()
        };
        comp_after > comp_before
    }

    #[test]
    fn articulation_matches_bruteforce_on_random_graphs() {
        for seed in 0..4u64 {
            let n = 24;
            let edges = gnm_edges(n, 30, seed);
            let art = articulation_points(n, &edges);
            for v in 0..n as u64 {
                // skip isolated vertices (no incident edges): both give false
                assert_eq!(art[v as usize], naive_articulation(n, &edges, v), "seed {seed} v {v}");
            }
        }
    }

    #[test]
    fn disconnected_graph_handled() {
        let edges = vec![(0, 1), (2, 3), (3, 4), (4, 2)];
        let (comp, count) = biconnected_components(5, &edges);
        assert_eq!(count, 2);
        assert_ne!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
    }
}
