//! Ear decomposition via the lca-labelling of Maon–Schieber–Vishkin
//! (the algorithm the paper's Group C row simulates).
//!
//! Every non-tree edge of a DFS tree is labelled by the depth of the lca
//! of its endpoints (ties broken by serial number); every tree edge
//! joins the ear of the smallest label covering it. For a two-edge-
//! connected graph this yields an ear decomposition: ear 0 is a cycle
//! and every later ear is a path whose endpoints lie on earlier ears.

use crate::lca::LcaTable;

/// Result of [`open_ear_decomposition`].
#[derive(Debug, Clone)]
pub struct EarDecomposition {
    /// Ear number of every input edge.
    pub ear_of_edge: Vec<u32>,
    /// Number of ears (`m − n + 1` for a connected graph).
    pub num_ears: u32,
}

/// Compute an ear decomposition of a connected, two-edge-connected
/// graph. Returns `None` when the graph is disconnected or has a bridge
/// (no ear decomposition exists).
pub fn open_ear_decomposition(n: usize, edges: &[(u64, u64)]) -> Option<EarDecomposition> {
    if n == 0 {
        return Some(EarDecomposition { ear_of_edge: Vec::new(), num_ears: 0 });
    }
    // DFS tree from vertex 0.
    let mut adj: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
    for (e, &(a, b)) in edges.iter().enumerate() {
        adj[a as usize].push((b as u32, e as u32));
        adj[b as usize].push((a as u32, e as u32));
    }
    let mut parent = vec![u64::MAX; n];
    let mut parent_edge = vec![u32::MAX; n];
    let mut order = Vec::with_capacity(n);
    parent[0] = 0;
    let mut stack = vec![0u32];
    let mut seen = vec![false; n];
    seen[0] = true;
    while let Some(u) = stack.pop() {
        order.push(u);
        for &(w, e) in &adj[u as usize] {
            if !seen[w as usize] {
                seen[w as usize] = true;
                parent[w as usize] = u as u64;
                parent_edge[w as usize] = e;
                stack.push(w);
            }
        }
    }
    if order.len() != n {
        return None; // disconnected
    }
    let is_tree_edge = {
        let mut t = vec![false; edges.len()];
        for x in 1..n {
            t[parent_edge[x] as usize] = true;
        }
        t
    };
    let depth = crate::euler::depths_from_parents(&parent);
    let lca_table = LcaTable::new(&parent);

    // Non-tree edges sorted by (lca depth, serial) — the ear order.
    let mut nontree: Vec<(u64, u32)> = edges
        .iter()
        .enumerate()
        .filter(|&(e, _)| !is_tree_edge[e])
        .map(|(e, &(a, b))| (depth[lca_table.lca(a, b) as usize], e as u32))
        .collect();
    nontree.sort_unstable();

    let mut ear_of_edge = vec![u32::MAX; edges.len()];
    // jump[x]: first ancestor (inclusive) whose parent edge is still
    // unassigned — path-compressed climbing.
    let mut jump: Vec<u32> = (0..n as u32).collect();
    fn find(jump: &mut [u32], x: u32) -> u32 {
        let mut root = x;
        while jump[root as usize] != root {
            root = jump[root as usize];
        }
        let mut cur = x;
        while cur != root {
            let next = jump[cur as usize];
            jump[cur as usize] = root;
            cur = next;
        }
        root
    }

    for (ear, &(_, e)) in nontree.iter().enumerate() {
        ear_of_edge[e as usize] = ear as u32;
        let (a, b) = edges[e as usize];
        let l = lca_table.lca(a, b);
        for side in [a, b] {
            let mut x = find(&mut jump, side as u32);
            while depth[x as usize] > depth[l as usize] {
                ear_of_edge[parent_edge[x as usize] as usize] = ear as u32;
                jump[x as usize] = parent[x as usize] as u32;
                x = find(&mut jump, x);
            }
        }
    }
    if ear_of_edge.contains(&u32::MAX) {
        return None; // a tree edge covered by no non-tree edge = bridge
    }
    Some(EarDecomposition { ear_of_edge, num_ears: nontree.len() as u32 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Validate the ear-decomposition properties.
    fn validate(n: usize, edges: &[(u64, u64)], d: &EarDecomposition) {
        assert_eq!(d.ear_of_edge.len(), edges.len());
        let mut on_earlier: Vec<Option<u32>> = vec![None; n]; // first ear touching vertex
        for ear in 0..d.num_ears {
            let ear_edges: Vec<(u64, u64)> = edges
                .iter()
                .zip(&d.ear_of_edge)
                .filter(|&(_, &e)| e == ear)
                .map(|(&ed, _)| ed)
                .collect();
            assert!(!ear_edges.is_empty(), "ear {ear} is empty");
            // Degree count: a simple path has exactly two odd-degree
            // endpoints; a cycle none.
            let mut deg = std::collections::HashMap::new();
            for &(a, b) in &ear_edges {
                *deg.entry(a).or_insert(0u32) += 1;
                *deg.entry(b).or_insert(0u32) += 1;
            }
            let odd: Vec<u64> = deg.iter().filter(|(_, &d)| d % 2 == 1).map(|(&v, _)| v).collect();
            if ear == 0 {
                assert!(odd.is_empty(), "ear 0 must be a cycle, odd = {odd:?}");
                assert!(deg.values().all(|&x| x == 2));
            } else {
                assert_eq!(odd.len(), 2, "ear {ear} must be a simple path: deg = {deg:?}");
                assert!(deg.values().all(|&x| x <= 2));
                // endpoints lie on earlier ears, internal vertices are new
                for (&v, &dv) in &deg {
                    let earlier = on_earlier[v as usize].map(|e| e < ear).unwrap_or(false);
                    if dv == 1 {
                        assert!(earlier, "endpoint {v} of ear {ear} not on an earlier ear");
                    } else {
                        assert!(!earlier, "internal vertex {v} of ear {ear} already used");
                    }
                }
            }
            for &v in deg.keys() {
                on_earlier[v as usize].get_or_insert(ear);
            }
        }
    }

    #[test]
    fn cycle_is_one_ear() {
        let edges: Vec<(u64, u64)> = (0..6).map(|i| (i, (i + 1) % 6)).collect();
        let d = open_ear_decomposition(6, &edges).unwrap();
        assert_eq!(d.num_ears, 1);
        validate(6, &edges, &d);
    }

    #[test]
    fn cycle_with_chord_is_two_ears() {
        let mut edges: Vec<(u64, u64)> = (0..6).map(|i| (i, (i + 1) % 6)).collect();
        edges.push((0, 3));
        let d = open_ear_decomposition(6, &edges).unwrap();
        assert_eq!(d.num_ears, 2);
        validate(6, &edges, &d);
    }

    #[test]
    fn k4_has_three_ears() {
        let edges = vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        let d = open_ear_decomposition(4, &edges).unwrap();
        assert_eq!(d.num_ears, 3); // m - n + 1
        validate(4, &edges, &d);
    }

    #[test]
    fn bridge_graph_rejected() {
        // two triangles joined by a bridge
        let edges = vec![(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)];
        assert!(open_ear_decomposition(6, &edges).is_none());
    }

    #[test]
    fn disconnected_rejected() {
        let edges = vec![(0, 1), (1, 2), (2, 0)];
        assert!(open_ear_decomposition(4, &edges).is_none());
    }

    #[test]
    fn random_biconnected_graphs_validate() {
        // Hamiltonian cycle + random chords is 2-connected.
        for seed in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 30;
            let mut edges: Vec<(u64, u64)> =
                (0..n as u64).map(|i| (i, (i + 1) % n as u64)).collect();
            let mut seen: std::collections::HashSet<(u64, u64)> =
                edges.iter().copied().map(|(a, b)| (a.min(b), a.max(b))).collect();
            for _ in 0..20 {
                let a = rng.gen_range(0..n as u64);
                let b = rng.gen_range(0..n as u64);
                if a != b && seen.insert((a.min(b), a.max(b))) {
                    edges.push((a.min(b), a.max(b)));
                }
            }
            let d = open_ear_decomposition(n, &edges).unwrap();
            assert_eq!(d.num_ears as usize, edges.len() - n + 1);
            validate(n, &edges, &d);
        }
    }
}
