//! Union–find, connected components and spanning forests (reference
//! semantics for the CGM hook-and-contract algorithms).

/// Disjoint-set forest with union by rank and path compression.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self { parent: (0..n as u32).collect(), rank: vec![0; n] }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        let mut cur = x;
        while cur != root {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    /// Merge the sets of `a` and `b`; returns `true` if they were
    /// distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb as u32,
            std::cmp::Ordering::Greater => self.parent[rb] = ra as u32,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra as u32;
                self.rank[ra] += 1;
            }
        }
        true
    }
}

/// Canonical component labels: `labels[x]` = smallest vertex id in `x`'s
/// component (deterministic, comparable across implementations).
pub fn cc_labels(n: usize, edges: &[(u64, u64)]) -> Vec<u64> {
    let mut uf = UnionFind::new(n);
    for &(a, b) in edges {
        uf.union(a as usize, b as usize);
    }
    let mut min_of_root = vec![u64::MAX; n];
    for x in 0..n {
        let r = uf.find(x);
        min_of_root[r] = min_of_root[r].min(x as u64);
    }
    (0..n).map(|x| min_of_root[uf.find(x)]).collect()
}

/// A spanning forest: the subset of `edges` (in input order) that
/// connected previously separate components.
pub fn spanning_forest(n: usize, edges: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut uf = UnionFind::new(n);
    edges.iter().copied().filter(|&(a, b)| uf.union(a as usize, b as usize)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgmio_data::gnm_edges;

    #[test]
    fn components_of_two_triangles() {
        let edges = vec![(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)];
        let labels = cc_labels(7, &edges);
        assert_eq!(labels, vec![0, 0, 0, 3, 3, 3, 6]);
    }

    #[test]
    fn forest_has_n_minus_c_edges() {
        let n = 200;
        let edges = gnm_edges(n, 400, 7);
        let labels = cc_labels(n, &edges);
        let mut comps: Vec<u64> = labels.clone();
        comps.sort_unstable();
        comps.dedup();
        let forest = spanning_forest(n, &edges);
        assert_eq!(forest.len(), n - comps.len());
        // forest spans the same components
        assert_eq!(cc_labels(n, &forest), labels);
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert_ne!(uf.find(2), uf.find(0));
        assert!(uf.union(2, 3));
        assert!(uf.union(0, 3));
        assert_eq!(uf.find(1), uf.find(2));
    }

    #[test]
    fn empty_graph_is_all_singletons() {
        assert_eq!(cc_labels(3, &[]), vec![0, 1, 2]);
        assert!(spanning_forest(3, &[]).is_empty());
    }
}
