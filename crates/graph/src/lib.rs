//! # cgmio-graph — graph substrate
//!
//! Sequential reference implementations for the paper's Group C
//! problems. The CGM programs in `cgmio-algos` are validated against
//! these on every test input.

#![warn(missing_docs)]

pub mod bicc;
pub mod ear;
pub mod euler;
pub mod lca;
pub mod unionfind;

pub use bicc::{articulation_points, biconnected_components};
pub use ear::open_ear_decomposition;
pub use euler::{depths_from_parents, euler_tour, list_ranks, Tree};
pub use lca::LcaTable;
pub use unionfind::{cc_labels, spanning_forest, UnionFind};

/// Undirected adjacency lists from an edge list.
pub fn adjacency(n: usize, edges: &[(u64, u64)]) -> Vec<Vec<u64>> {
    let mut adj = vec![Vec::new(); n];
    for &(a, b) in edges {
        adj[a as usize].push(b);
        adj[b as usize].push(a);
    }
    adj
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacency_is_symmetric() {
        let adj = adjacency(4, &[(0, 1), (1, 2), (0, 3)]);
        assert_eq!(adj[0], vec![1, 3]);
        assert_eq!(adj[1], vec![0, 2]);
        assert_eq!(adj[2], vec![1]);
        assert_eq!(adj[3], vec![0]);
    }
}
